(* Packet_arena: the preallocated structure-of-arrays packet store must
   behave exactly like the record-backed Packet module it replaced in the
   protocol hot loop — and its free list must recycle handles without
   ever aliasing a live one. *)

module Rng = Dps_prelude.Rng
module Path = Dps_network.Path
module Topology = Dps_network.Topology
module Routing = Dps_network.Routing
module Packet = Dps_sim.Packet
module Arena = Dps_sim.Packet_arena

(* A pool of distinct valid paths (1..5 hops on a line). *)
let path_pool =
  let g = Topology.line ~nodes:7 ~spacing:1. in
  let r = Routing.make g in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if dst > src then Routing.path r ~src ~dst else None)
        [ 1; 2; 3; 4; 5; 6 ])
    [ 0; 1; 2; 3 ]
  |> Array.of_list

(* ------------------------------------------------------- unit behaviour *)

let test_lifecycle () =
  let a = Arena.create () in
  let path = path_pool.(Array.length path_pool - 1) in
  let d = Path.length path in
  let p = Arena.alloc a ~id:7 ~path ~injected_slot:10 in
  Alcotest.(check int) "id" 7 (Arena.id a p);
  Alcotest.(check int) "injected_slot" 10 (Arena.injected_slot a p);
  Alcotest.(check int) "remaining" d (Arena.remaining_hops a p);
  Alcotest.(check bool) "not delivered" false (Arena.delivered a p);
  Alcotest.(check int) "no latency yet" (-1) (Arena.latency a p);
  Alcotest.(check int) "first hop" (Path.hop path 0) (Arena.next_link a p);
  Arena.advance a p ~slot:20;
  Alcotest.(check int) "second hop" (Path.hop path 1) (Arena.next_link a p);
  for i = 1 to d - 1 do
    Arena.advance a p ~slot:(20 + (10 * i))
  done;
  Alcotest.(check bool) "delivered" true (Arena.delivered a p);
  Alcotest.(check int) "latency" ((20 + (10 * (d - 1))) - 10) (Arena.latency a p);
  Alcotest.(check int) "delivered_slot" (20 + (10 * (d - 1)))
    (Arena.delivered_slot a p)

let test_flags_and_chain () =
  let a = Arena.create () in
  let p = Arena.alloc a ~id:0 ~path:path_pool.(0) ~injected_slot:0 in
  Alcotest.(check bool) "fresh not failed" false (Arena.failed a p);
  Arena.set_failed a p;
  Alcotest.(check bool) "failed sticks" true (Arena.failed a p);
  Alcotest.(check int) "fresh release_frame" 0 (Arena.release_frame a p);
  Arena.set_release_frame a p 9;
  Alcotest.(check int) "release_frame sticks" 9 (Arena.release_frame a p);
  Alcotest.(check int) "fresh chain nil" (-1) (Arena.next a p);
  Arena.set_next a p 42;
  Alcotest.(check int) "chain sticks" 42 (Arena.next a p);
  (* Recycled slots come back with every field re-initialised. *)
  Arena.free a p;
  let q = Arena.alloc a ~id:1 ~path:path_pool.(1) ~injected_slot:5 in
  Alcotest.(check int) "handle recycled" p q;
  Alcotest.(check bool) "recycled not failed" false (Arena.failed a q);
  Alcotest.(check int) "recycled release_frame" 0 (Arena.release_frame a q);
  Alcotest.(check int) "recycled chain nil" (-1) (Arena.next a q);
  Alcotest.(check int) "recycled hop reset" 0 (Arena.hop a q)

let test_growth () =
  let a = Arena.create ~capacity:1 () in
  let handles =
    Array.init 100 (fun i ->
        Arena.alloc a ~id:i ~path:path_pool.(i mod Array.length path_pool)
          ~injected_slot:i)
  in
  Alcotest.(check int) "live count" 100 (Arena.live a);
  Alcotest.(check bool) "capacity grew" true (Arena.capacity a >= 100);
  let distinct = List.sort_uniq compare (Array.to_list handles) in
  Alcotest.(check int) "all handles distinct" 100 (List.length distinct);
  Array.iteri
    (fun i p -> Alcotest.(check int) "field survives growth" i (Arena.id a p))
    handles;
  let cap = Arena.capacity a in
  Array.iter (fun p -> Arena.free a p) handles;
  Alcotest.(check int) "live drains" 0 (Arena.live a);
  let again =
    Array.init 100 (fun i ->
        Arena.alloc a ~id:i ~path:path_pool.(0) ~injected_slot:0)
  in
  Alcotest.(check int) "capacity plateaus" cap (Arena.capacity a);
  let distinct = List.sort_uniq compare (Array.to_list again) in
  Alcotest.(check int) "recycled handles distinct" 100 (List.length distinct)

(* ------------------------------------------------------------ properties *)

(* Interpreter for random op sequences, run simultaneously against the
   arena and a reference table of Packet records. After every op, each
   live handle's observable fields must agree with its record twin, and
   a fresh allocation must never alias a live handle. *)

type model = { handle : int; pkt : Packet.t }

let check_equal a { handle = p; pkt } =
  Arena.id a p = pkt.Packet.id
  && Arena.path a p == pkt.Packet.path
  && Arena.injected_slot a p = pkt.Packet.injected_slot
  && Arena.hop a p = pkt.Packet.hop
  && Arena.failed a p = pkt.Packet.failed
  && Arena.release_frame a p = pkt.Packet.release_frame
  && Arena.delivered a p = Packet.delivered pkt
  && Arena.remaining_hops a p = Packet.remaining_hops pkt
  && (Arena.delivered_slot a p =
      match pkt.Packet.delivered_slot with None -> -1 | Some s -> s)
  && (Arena.latency a p =
      match Packet.latency pkt with None -> -1 | Some l -> l)
  && (Packet.delivered pkt || Arena.next_link a p = Packet.next_link pkt)

let prop_arena_matches_packet =
  QCheck.Test.make ~count:200 ~name:"arena ops mirror Packet records"
    QCheck.(list (pair (int_bound 5) small_nat))
    (fun ops ->
      let a = Arena.create ~capacity:2 () in
      let live = ref [] in
      let next_id = ref 0 in
      let slot = ref 0 in
      let pick r = List.nth !live (r mod List.length !live) in
      List.iter
        (fun (op, r) ->
          incr slot;
          match op with
          | 0 | 1 ->
            (* alloc; the new handle must not alias any live one *)
            let path = path_pool.(r mod Array.length path_pool) in
            let id = !next_id in
            incr next_id;
            let p = Arena.alloc a ~id ~path ~injected_slot:!slot in
            if List.exists (fun m -> m.handle = p) !live then
              QCheck.Test.fail_report "alloc returned a live handle";
            live := { handle = p; pkt = Packet.make ~id ~path ~injected_slot:!slot } :: !live
          | 2 when !live <> [] ->
            (* free a random live handle *)
            let m = pick r in
            Arena.free a m.handle;
            live := List.filter (fun m' -> m' != m) !live
          | 3 when !live <> [] ->
            let m = pick r in
            if not (Packet.delivered m.pkt) then begin
              Arena.advance a m.handle ~slot:!slot;
              Packet.advance m.pkt ~slot:!slot
            end
          | 4 when !live <> [] ->
            let m = pick r in
            Arena.set_failed a m.handle;
            m.pkt.Packet.failed <- true
          | 5 when !live <> [] ->
            let m = pick r in
            Arena.set_release_frame a m.handle r;
            m.pkt.Packet.release_frame <- r
          | _ -> ())
        ops;
      if Arena.live a <> List.length !live then
        QCheck.Test.fail_report "live count drifted";
      List.for_all (check_equal a) !live)

let prop_free_list_never_aliases =
  QCheck.Test.make ~count:100 ~name:"alloc/free churn keeps handles disjoint"
    QCheck.(small_nat)
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 1) () in
      let a = Arena.create ~capacity:1 () in
      let live = Hashtbl.create 16 in
      for i = 0 to 499 do
        if Rng.bool rng && Hashtbl.length live > 0 then begin
          (* free a pseudo-random live handle *)
          let keys = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
          let p = List.nth keys (Rng.int rng (List.length keys)) in
          Arena.free a p;
          Hashtbl.remove live p
        end
        else begin
          let p = Arena.alloc a ~id:i ~path:path_pool.(0) ~injected_slot:i in
          if Hashtbl.mem live p then
            QCheck.Test.fail_report "alloc aliased a live handle";
          Hashtbl.add live p ()
        end
      done;
      Arena.live a = Hashtbl.length live)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "packet_arena"
    [ ( "unit",
        [ quick "lifecycle mirrors Packet" test_lifecycle;
          quick "flags, chain, recycling" test_flags_and_chain;
          quick "growth and plateau" test_growth ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_arena_matches_packet; prop_free_list_never_aliases ] ) ]
