(* Tests for lib/serve: the wire protocol, token buckets, the class
   guard's monotone-shedding invariant (qcheck over random potential
   walks), engine determinism, checkpoint/restore round-trips with
   journal tampering, and the --jobs byte-invariance of faulted+guarded
   runs (the composition dps_serve's determinism story rests on). *)

module Rng = Dps_prelude.Rng
module Topology = Dps_network.Topology
module Measure = Dps_interference.Measure
module Oracle = Dps_sim.Oracle
module Oneshot = Dps_static.Oneshot
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Stability = Dps_core.Stability
module Plan = Dps_faults.Plan
module Class_guard = Dps_faults.Class_guard
module Par = Dps_par.Par
module Scenario = Dps_serve.Scenario
module Classes = Dps_serve.Classes
module Wire = Dps_serve.Wire
module Bucket = Dps_serve.Bucket
module Engine = Dps_serve.Engine

(* ---------------------------------------------------------------- wire *)

let test_wire_parse () =
  (match
     Wire.parse
       {|{"do":"inject","tenant":"acme","path":[1,2],"delay":3,"copies":4}|}
   with
  | Ok (Wire.Inject { tenant = "acme"; links = [ 1; 2 ]; delay = 3; copies = 4 })
    -> ()
  | _ -> Alcotest.fail "inject did not parse");
  (match Wire.parse {|{"do":"inject","tenant":"a","path":[0]}|} with
  | Ok (Wire.Inject { delay = 0; copies = 1; _ }) -> ()
  | _ -> Alcotest.fail "inject defaults wrong");
  (match Wire.parse {|{"do":"step"}|} with
  | Ok (Wire.Step { frames = 1 }) -> ()
  | _ -> Alcotest.fail "step default wrong");
  (match
     Wire.parse {|{"do":"attach","tenant":"web","class":"embb","rate":2.5}|}
   with
  | Ok (Wire.Attach { klass = Classes.Embb; rate = Some 2.5; burst = None; _ })
    -> ()
  | _ -> Alcotest.fail "attach did not parse");
  (match Wire.parse {|{"do":"status"}|} with
  | Ok Wire.Status -> ()
  | _ -> Alcotest.fail "status did not parse")

let test_wire_errors_name_field () =
  let err line =
    match Wire.parse line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  (* Every rejection names the offending field or construct, so clients
     can fix their message without reading the daemon source. *)
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "bad JSON prefixed" true
    (String.starts_with ~prefix:"bad JSON:" (err "{not json"));
  Alcotest.(check bool) "unknown verb named" true
    (contains ~sub:"unknown command" (err {|{"do":"fly"}|}));
  Alcotest.(check bool) "missing tenant named" true
    (contains ~sub:{|"tenant"|} (err {|{"do":"inject","path":[0]}|}));
  Alcotest.(check bool) "bad path named" true
    (contains ~sub:{|"path"|} (err {|{"do":"inject","tenant":"a","path":[-1]}|}));
  Alcotest.(check bool) "copies bound named" true
    (contains ~sub:{|"copies"|}
       (err {|{"do":"inject","tenant":"a","path":[0],"copies":0}|}));
  Alcotest.(check bool) "tenant charset enforced" true
    (contains ~sub:"invalid tenant name"
       (err {|{"do":"inject","tenant":"a b","path":[0]}|}))

let test_wire_parse_observability () =
  (match Wire.parse {|{"do":"stats"}|} with
  | Ok Wire.Stats -> ()
  | _ -> Alcotest.fail "stats did not parse");
  (match Wire.parse {|{"do":"subscribe"}|} with
  | Ok (Wire.Subscribe { every = 16 }) -> ()
  | _ -> Alcotest.fail "subscribe default cadence wrong");
  (match Wire.parse {|{"do":"subscribe","every":4}|} with
  | Ok (Wire.Subscribe { every = 4 }) -> ()
  | _ -> Alcotest.fail "subscribe cadence not honoured");
  match Wire.parse {|{"do":"unsubscribe"}|} with
  | Ok Wire.Unsubscribe -> ()
  | _ -> Alcotest.fail "unsubscribe did not parse"

(* The diagnostics are part of the wire contract: exact text, including
   the byte offset of the offending key, pinned so clients can rely on
   them (docs/SERVING.md). *)
let test_wire_diagnostic_offsets () =
  let err line =
    match Wire.parse line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  Alcotest.(check string) "wrong type points at the key"
    {|field "copies" must be an integer (key "copies" at byte 39)|}
    (err {|{"do":"inject","tenant":"a","path":[0],"copies":"x"}|});
  Alcotest.(check string) "range violation points at the key"
    {|field "every" must be >= 1 (key "every" at byte 18)|}
    (err {|{"do":"subscribe","every":0}|});
  Alcotest.(check string) "frames bound points at the key"
    {|field "frames" must be >= 1 (key "frames" at byte 13)|}
    (err {|{"do":"step","frames":0}|});
  Alcotest.(check string) "missing key has no offset to point at"
    {|missing field "tenant"|}
    (err {|{"do":"inject","path":[0]}|})

let test_wire_tenant_names () =
  Alcotest.(check bool) "simple ok" true (Wire.valid_tenant_name "acme-01_x");
  Alcotest.(check bool) "empty bad" false (Wire.valid_tenant_name "");
  Alcotest.(check bool) "space bad" false (Wire.valid_tenant_name "a b");
  Alcotest.(check bool) "quote bad" false (Wire.valid_tenant_name "a\"b");
  Alcotest.(check bool) "65 chars bad" false
    (Wire.valid_tenant_name (String.make 65 'a'));
  Alcotest.(check bool) "64 chars ok" true
    (Wire.valid_tenant_name (String.make 64 'a'))

let test_wire_render () =
  Alcotest.(check string) "ok reply"
    {|{"ok":true,"do":"step","frame":7,"done":true}|}
    (Wire.ok ~cmd:"step" [ ("frame", Wire.Int 7); ("done", Wire.Bool true) ]);
  Alcotest.(check string) "error reply escapes"
    {|{"ok":false,"error":"bad \"x\""}|}
    (Wire.error ~err:{|bad "x"|} [])

(* -------------------------------------------------------------- bucket *)

let test_bucket_take_refill () =
  let b = Bucket.create ~rate:1.5 ~burst:4. in
  Alcotest.(check bool) "full bucket takes" true (Bucket.take b 4);
  Alcotest.(check bool) "all-or-nothing" false (Bucket.take b 1);
  Alcotest.(check (float 1e-9)) "nothing consumed on refusal" 0.
    (Bucket.tokens b);
  Bucket.refill b;
  Alcotest.(check (float 1e-9)) "refill adds rate" 1.5 (Bucket.tokens b);
  Bucket.refill b;
  Bucket.refill b;
  Bucket.refill b;
  Alcotest.(check (float 1e-9)) "refill caps at burst" 4. (Bucket.tokens b)

let test_bucket_retry_guidance () =
  let b = Bucket.create ~rate:2. ~burst:8. in
  ignore (Bucket.take b 8);
  (* Deficit 3 at rate 2: two refills are certain to cover it — and the
     guidance must be exact, because overloaded replies promise it. *)
  Alcotest.(check int) "frames_until exact" 2 (Bucket.frames_until b 3);
  Alcotest.(check int) "zero when takeable" 0
    (Bucket.frames_until (Bucket.create ~rate:1. ~burst:4.) 3);
  Bucket.refill b;
  Bucket.refill b;
  Alcotest.(check bool) "guidance honored" true (Bucket.take b 3);
  Alcotest.(check bool) "burst cap rules forever" false (Bucket.can_ever b 9);
  Alcotest.(check bool) "burst-sized batch possible" true (Bucket.can_ever b 8)

(* --------------------------------------------------------- class guard *)

let test_guard_rejects_unnested () =
  let bad levels =
    match Class_guard.create ~levels with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted un-nested watermarks"
  in
  bad [||];
  (* high decreasing across priorities *)
  bad [| { Class_guard.high = 50; low = 10 }; { high = 40; low = 10 } |];
  (* low decreasing across priorities *)
  bad [| { Class_guard.high = 50; low = 20 }; { high = 60; low = 10 } |];
  (* low >= high within a level *)
  bad [| { Class_guard.high = 10; low = 10 } |];
  match Class_guard.parse "40:10,80:20,160:40" with
  | g -> Alcotest.(check int) "parse levels" 3 (Class_guard.levels g)
  | exception Invalid_argument msg -> Alcotest.failf "parse refused: %s" msg

(* S3: over any nested guard and any potential walk, the active shed
   set is always a downward-closed prefix of the priority order — a
   higher class is never shed while a lower one is admitted. This is
   the structural property Engine.submit leans on; here it is checked
   directly against randomized hysteresis trajectories. *)
let test_guard_monotone_qcheck =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 3 in
      let* lows = list_size (return n) (int_range 0 40) in
      let* highs = list_size (return n) (int_range 50 150) in
      let* walk = list_size (int_range 1 60) (int_range 0 200) in
      return (List.sort compare lows, List.sort compare highs, walk))
  in
  let arb =
    QCheck.make gen ~print:(fun (lows, highs, walk) ->
        Printf.sprintf "lows=[%s] highs=[%s] walk=[%s]"
          (String.concat ";" (List.map string_of_int lows))
          (String.concat ";" (List.map string_of_int highs))
          (String.concat ";" (List.map string_of_int walk)))
  in
  QCheck.Test.make ~count:500 ~name:"class guard sheds a prefix" arb
    (fun (lows, highs, walk) ->
      (* Sorted lows all < 50 <= sorted highs: nesting holds by
         construction, so create must accept. *)
      let levels =
        Array.of_list
          (List.map2
             (fun low high -> { Class_guard.high; low })
             lows highs)
      in
      let g = Class_guard.create ~levels in
      let n = Class_guard.levels g in
      List.iteri
        (fun frame potential ->
          Class_guard.observe g ~frame ~potential;
          let floor = Class_guard.shed_floor g in
          for p = 0 to n - 1 do
            let shed = Class_guard.shedding g ~priority:p in
            (* prefix property, and shed_floor describes it exactly *)
            if shed <> (p < floor) then
              QCheck.Test.fail_reportf
                "frame %d (potential %d): priority %d shed=%b but floor=%d"
                frame potential p shed floor;
            if shed && p > 0 && not (Class_guard.shedding g ~priority:(p - 1))
            then
              QCheck.Test.fail_reportf
                "frame %d: priority %d shed while %d admitted" frame p (p - 1)
          done)
        walk;
      true)

let test_guard_hysteresis () =
  let g = Class_guard.parse "40:10,80:20" in
  let obs frame potential = Class_guard.observe g ~frame ~potential in
  obs 0 39;
  Alcotest.(check int) "below high: nothing shed" 0 (Class_guard.shed_floor g);
  obs 1 45;
  Alcotest.(check int) "level 0 trips at high" 1 (Class_guard.shed_floor g);
  Alcotest.(check (option int)) "onset recorded" (Some 1)
    (Class_guard.onset g ~priority:0);
  obs 2 85;
  Alcotest.(check int) "level 1 trips later" 2 (Class_guard.shed_floor g);
  obs 3 21;
  (* Φ between the lows: level 1 clears (low 20 < 21 is still above —
     clears at <= 20), level 0 holds. *)
  Alcotest.(check bool) "level 1 still shedding above its low" true
    (Class_guard.shedding g ~priority:1);
  obs 4 15;
  Alcotest.(check int) "level 1 clears first" 1 (Class_guard.shed_floor g);
  obs 5 5;
  Alcotest.(check int) "level 0 clears at its low" 0 (Class_guard.shed_floor g);
  Alcotest.(check bool) "nothing active" false (Class_guard.any_active g)

(* -------------------------------------------------------------- engine *)

let scenario () =
  Scenario.make ~model:"wireline" ~topology:"line:6" ~rate:0.3 ()

let ok_unit what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let submit_ok engine ~tenant ~links ~copies =
  match Engine.submit engine ~tenant ~links ~delay:0 ~copies with
  | Ok o -> o
  | Error msg -> Alcotest.failf "submit: %s" msg

(* The command script every engine test drives: two tenants, a couple of
   batches, a detach, some frames. *)
let drive engine =
  ok_unit "attach acme"
    (Engine.attach engine ~tenant:"acme" ~klass:Classes.Urllc ());
  ok_unit "attach iot"
    (Engine.attach engine ~tenant:"iot" ~klass:Classes.Mmtc ());
  ignore (submit_ok engine ~tenant:"acme" ~links:[ 2; 3 ] ~copies:2);
  Engine.step engine ~frames:3;
  ignore (submit_ok engine ~tenant:"iot" ~links:[ 4 ] ~copies:3);
  Engine.step engine ~frames:2;
  ok_unit "detach iot" (Engine.detach engine ~tenant:"iot");
  Engine.step engine ~frames:1

let status_line engine = Wire.ok ~cmd:"status" (Engine.status_fields engine)

let test_engine_deterministic () =
  (* Logical time only: the engine state is a pure function of the
     command sequence, so two fresh engines driven identically must
     render byte-identical status replies. *)
  let run () =
    let e =
      Engine.create
        (Engine.default_config ~scenario:(scenario ()) ~seed:2012 ())
    in
    drive e;
    let s = status_line e in
    Engine.close e;
    s
  in
  Alcotest.(check string) "status byte-identical" (run ()) (run ())

let test_engine_quota_backpressure () =
  let e =
    Engine.create (Engine.default_config ~scenario:(scenario ()) ~seed:7 ())
  in
  ok_unit "attach"
    (Engine.attach e ~tenant:"t" ~klass:Classes.Urllc ~rate:1. ~burst:2. ());
  (match submit_ok e ~tenant:"t" ~links:[ 4 ] ~copies:2 with
  | Engine.Admitted { copies = 2; _ } -> ()
  | _ -> Alcotest.fail "burst-sized batch must be admitted");
  (match submit_ok e ~tenant:"t" ~links:[ 4 ] ~copies:1 with
  | Engine.Overloaded { retry_after = 1 } -> ()
  | _ -> Alcotest.fail "drained bucket must answer overloaded, retry 1");
  (match submit_ok e ~tenant:"t" ~links:[ 4 ] ~copies:3 with
  | Engine.Too_large { burst } ->
    Alcotest.(check (float 1e-9)) "burst reported" 2. burst
  | _ -> Alcotest.fail "over-burst batch must answer too-large");
  (* The retry guidance is a promise: one frame later the take succeeds. *)
  Engine.step e ~frames:1;
  (match submit_ok e ~tenant:"t" ~links:[ 4 ] ~copies:1 with
  | Engine.Admitted _ -> ()
  | _ -> Alcotest.fail "retry guidance was wrong");
  (match Engine.submit e ~tenant:"ghost" ~links:[ 4 ] ~delay:0 ~copies:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tenant must be an error");
  Engine.close e

let test_engine_subscription () =
  let e =
    Engine.create (Engine.default_config ~scenario:(scenario ()) ~seed:5 ())
  in
  let pushed = ref [] in
  let push line = pushed := line :: !pushed in
  ok_unit "attach"
    (Engine.attach e ~tenant:"acme" ~klass:Classes.Urllc ());
  (match Engine.subscribe e ~every:0 ~push with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cadence 0 must be rejected");
  Alcotest.(check (option int)) "rejected subscribe leaves none" None
    (Engine.subscribed e);
  ok_unit "subscribe" (Engine.subscribe e ~every:2 ~push);
  Alcotest.(check (option int)) "cadence visible" (Some 2)
    (Engine.subscribed e);
  Engine.step e ~frames:4;
  (* frames 1..4, cadence 2: pushes at 2 and 4 *)
  Alcotest.(check int) "one push per cadence boundary" 2
    (List.length !pushed);
  List.iter
    (fun line ->
      Alcotest.(check bool) "push is a self-identifying metrics line" true
        (String.starts_with ~prefix:{|{"v":2,"type":"metrics","frame":|} line))
    !pushed;
  (* replace, not stack: a second subscribe just changes the cadence *)
  ok_unit "re-subscribe" (Engine.subscribe e ~every:3 ~push);
  Alcotest.(check (option int)) "cadence replaced" (Some 3)
    (Engine.subscribed e);
  Alcotest.(check bool) "unsubscribe reports it was live" true
    (Engine.unsubscribe e);
  Alcotest.(check bool) "second unsubscribe is a no-op" false
    (Engine.unsubscribe e);
  pushed := [];
  Engine.step e ~frames:3;
  Alcotest.(check int) "no pushes after unsubscribe" 0 (List.length !pushed);
  (* a push target that throws must auto-detach, not poison the frame
     loop (the step itself is journaled; the push is best-effort) *)
  ok_unit "subscribe doomed" (Engine.subscribe e ~every:1 ~push:(fun _ -> raise Exit));
  Engine.step e ~frames:1;
  Alcotest.(check (option int)) "dead client detached" None
    (Engine.subscribed e);
  Engine.close e

let test_engine_stats_read_only () =
  (* stats recomputes its derived figures from raw counters; asking for
     it must not disturb engine state (it is not journaled, so any side
     effect would diverge a restore replay). *)
  let e =
    Engine.create (Engine.default_config ~scenario:(scenario ()) ~seed:2012 ())
  in
  drive e;
  let before = status_line e in
  let stats1 = Wire.ok ~cmd:"stats" (Engine.stats_fields e) in
  let stats2 = Wire.ok ~cmd:"stats" (Engine.stats_fields e) in
  Alcotest.(check string) "stats deterministic" stats1 stats2;
  Alcotest.(check string) "status untouched by stats" before (status_line e);
  Alcotest.(check bool) "jain index present" true
    (List.mem_assoc "jain" (Engine.stats_fields e));
  Engine.close e

let with_temp_dir f =
  let dir = Filename.temp_file "dps_serve_test" ".ck" in
  Sys.remove dir;
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let checkpointed_run dir =
  let e =
    Engine.create ~checkpoint_dir:dir
      (Engine.default_config ~checkpoint_every:1 ~scenario:(scenario ())
         ~seed:2012 ())
  in
  drive e;
  let s = status_line e in
  Engine.close e;
  s

let test_checkpoint_roundtrip () =
  with_temp_dir (fun dir ->
      let before = checkpointed_run dir in
      match Engine.restore ~dir () with
      | Error msg -> Alcotest.failf "restore: %s" msg
      | Ok (e, r) ->
        Alcotest.(check bool) "clean journal" false r.Engine.dropped_tail;
        Alcotest.(check int) "frames replayed" 6 r.Engine.replayed_frames;
        Alcotest.(check string) "restored state byte-identical" before
          (status_line e);
        (* The restored engine is live: it can keep serving. *)
        ok_unit "attach after restore"
          (Engine.attach e ~tenant:"late" ~klass:Classes.Embb ());
        Engine.step e ~frames:1;
        Alcotest.(check int) "time advances" 7 (Engine.frame e);
        Engine.close e)

let test_restore_drops_torn_tail () =
  with_temp_dir (fun dir ->
      let before = checkpointed_run dir in
      (* A crash mid-append: half an op, no newline. Restore must drop
         it, say so, and land on the pre-crash state. *)
      let oc =
        open_out_gen [ Open_append ] 0o644 (Filename.concat dir "journal.jsonl")
      in
      output_string oc {|{"op":"inject","tena|};
      close_out oc;
      match Engine.restore ~dir () with
      | Error msg -> Alcotest.failf "restore refused torn tail: %s" msg
      | Ok (e, r) ->
        Alcotest.(check bool) "tail reported dropped" true r.Engine.dropped_tail;
        Alcotest.(check string) "state as of last complete op" before
          (status_line e);
        Engine.close e)

let test_restore_rejects_tampering () =
  with_temp_dir (fun dir ->
      ignore (checkpointed_run dir);
      (* Flip a journaled admission outcome: replay produces a different
         id, the integrity check must refuse to resume. *)
      let path = Filename.concat dir "journal.jsonl" in
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let replace ~sub ~by s =
        let n = String.length sub in
        let b = Buffer.create (String.length s) in
        let i = ref 0 in
        while !i < String.length s do
          if !i + n <= String.length s && String.sub s !i n = sub then begin
            Buffer.add_string b by;
            i := !i + n
          end
          else begin
            Buffer.add_char b s.[!i];
            incr i
          end
        done;
        Buffer.contents b
      in
      let tampered =
        List.rev_map (fun l -> replace ~sub:{|"id":0|} ~by:{|"id":9999|} l) !lines
      in
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        tampered;
      close_out oc;
      match Engine.restore ~dir () with
      | Error _ -> ()
      | Ok (e, _) ->
        Engine.close e;
        Alcotest.fail "restore accepted a tampered journal")

(* ------------------------------------------------- jobs byte-invariance *)

(* S3: faulted + guarded runs fanned out over Par domains must be
   byte-identical to the sequential evaluation — verdicts, shed counts
   and recovery episodes included. dps_run already pins this for plain
   runs (par_smoke); this is the fault/guard composition the daemon's
   determinism story additionally needs. *)
let faulted_fingerprint seed =
  let g = Topology.line ~nodes:5 ~spacing:1. in
  let m = Dps_network.Graph.link_count g in
  let routing = Dps_network.Routing.make g in
  let p src dst = Option.get (Dps_network.Routing.path routing ~src ~dst) in
  let config =
    Protocol.configure ~epsilon:0.5 ~algorithm:Oneshot.algorithm
      ~measure:(Measure.identity m) ~lambda:0.3 ~max_hops:4 ()
  in
  let source =
    Driver.Stochastic
      (Dps_injection.Stochastic.make [ [ (p 0 4, 0.1) ]; [ (p 4 0, 0.1) ] ])
  in
  let plan = Plan.parse "jam:100-220,loss:300-360:p=0.5" in
  let guard = Protocol.guard ~high:30 ~low:5 () in
  let report, injector =
    Driver.run_faulted ~guard ~config ~oracle:Oracle.Wireline ~source ~plan
      ~frames:8 ~rng:(Rng.create ~seed ()) ()
  in
  Printf.sprintf "seed=%d verdict=%s injected=%d delivered=%d shed=%d \
                  overload=%d recoveries=%d suppressed=%d"
    seed
    (Stability.to_string (Stability.assess report.Protocol.in_system))
    report.Protocol.injected report.Protocol.delivered report.Protocol.shed
    report.Protocol.overload_frames
    (List.length report.Protocol.recoveries)
    (Dps_faults.Injector.suppressed injector)

let test_faulted_jobs_invariance () =
  let seeds = [ 11; 12; 13; 14; 15; 16 ] in
  let sequential = List.map faulted_fingerprint seeds in
  let parallel = Par.map ~jobs:4 faulted_fingerprint seeds in
  List.iter2
    (Alcotest.(check string) "fingerprint identical across jobs")
    sequential parallel

(* ------------------------------------------------------------------ run *)

let () =
  Alcotest.run "serve"
    [ ( "wire",
        [ Alcotest.test_case "commands parse" `Quick test_wire_parse;
          Alcotest.test_case "errors name the field" `Quick
            test_wire_errors_name_field;
          Alcotest.test_case "observability commands parse" `Quick
            test_wire_parse_observability;
          Alcotest.test_case "diagnostic byte offsets pinned" `Quick
            test_wire_diagnostic_offsets;
          Alcotest.test_case "tenant names" `Quick test_wire_tenant_names;
          Alcotest.test_case "reply rendering" `Quick test_wire_render ] );
      ( "bucket",
        [ Alcotest.test_case "take/refill" `Quick test_bucket_take_refill;
          Alcotest.test_case "retry guidance exact" `Quick
            test_bucket_retry_guidance ] );
      ( "class guard",
        [ Alcotest.test_case "rejects un-nested" `Quick
            test_guard_rejects_unnested;
          QCheck_alcotest.to_alcotest test_guard_monotone_qcheck;
          Alcotest.test_case "hysteresis trips and clears" `Quick
            test_guard_hysteresis ] );
      ( "engine",
        [ Alcotest.test_case "deterministic status" `Quick
            test_engine_deterministic;
          Alcotest.test_case "quota backpressure" `Quick
            test_engine_quota_backpressure;
          Alcotest.test_case "metrics subscription" `Quick
            test_engine_subscription;
          Alcotest.test_case "stats is read-only" `Quick
            test_engine_stats_read_only;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick
            test_restore_drops_torn_tail;
          Alcotest.test_case "tampered journal refused" `Quick
            test_restore_rejects_tampering ] );
      ( "parallel",
        [ Alcotest.test_case "faulted+guarded jobs invariance" `Quick
            test_faulted_jobs_invariance ] );
    ]
