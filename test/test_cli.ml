(* CLI surface tests for dps_run.

   The dune rule in this directory captures `dps_run --help=plain` into
   dps_run_help.txt at build time; these tests assert the documented
   surface against it, and pin the usage examples in the source header
   against the parser — the header once advertised `--rate 0.2` for the
   mac/decay example, a rate that mac/decay cannot be dimensioned for. *)

module Measure = Dps_interference.Measure
module Protocol = Dps_core.Protocol

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains needle haystack =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let help () = read_file "dps_run_help.txt"

let all_flags =
  [ "--model"; "--topology"; "--algorithm"; "--rate"; "--epsilon"; "--frames";
    "--flows"; "--adversary"; "--stations"; "--loss"; "--seed"; "--reps";
    "--jobs"; "--trace"; "--metrics"; "--metrics-every"; "--trace-packets";
    "--fault"; "--fault-plan"; "--guard"; "--sparse"; "--tile" ]

let test_help_lists_every_flag () =
  let h = help () in
  List.iter
    (fun flag ->
      Alcotest.(check bool) (flag ^ " in --help") true (contains flag h))
    all_flags

let test_help_mentions_docs () =
  let h = help () in
  Alcotest.(check bool) "examples section" true (contains "EXAMPLES" h);
  Alcotest.(check bool) "see-also docs/CLI.md" true (contains "docs/CLI.md" h);
  Alcotest.(check bool) "see-also docs/OBSERVABILITY.md" true
    (contains "docs/OBSERVABILITY.md" h);
  Alcotest.(check bool) "--fault points at docs/FAULTS.md" true
    (contains "docs/FAULTS.md" h)

(* Every `--flag` token used by the example invocations in the source
   header must be a flag --help knows about — keeps header and parser
   from drifting apart. *)
let header_example_flags () =
  let src = read_file "../bin/dps_run.ml" in
  let flags = ref [] in
  let len = String.length src in
  let is_flag_char c = (c >= 'a' && c <= 'z') || c = '-' in
  let i = ref 0 in
  (* only scan the leading comment block *)
  let stop =
    match String.index_opt src '*' with
    | Some _ -> (
      match
        let rec find j =
          if j + 1 >= len then None
          else if src.[j] = '*' && src.[j + 1] = ')' then Some j
          else find (j + 1)
        in
        find 0
      with
      | Some j -> j
      | None -> len)
    | None -> len
  in
  while !i + 1 < stop do
    if src.[!i] = '-' && src.[!i + 1] = '-' then begin
      let j = ref (!i + 2) in
      while !j < stop && is_flag_char src.[!j] do
        incr j
      done;
      if !j > !i + 2 then
        flags := String.sub src !i (!j - !i) :: !flags;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !flags

let test_header_examples_match_help () =
  let h = help () in
  let flags = header_example_flags () in
  Alcotest.(check bool) "header has example flags" true (List.length flags > 3);
  List.iter
    (fun flag ->
      Alcotest.(check bool)
        (flag ^ " from header example exists in --help")
        true (contains flag h))
    flags

(* The header's mac/decay example must actually be runnable: mirror the
   CLI's construction (mac model, 8 stations, decay delta 0.3, default
   epsilon 0.5, max_hops 1) and check the advertised rate configures
   while the old broken one (0.2) does not. *)
let mac_decay_configure rate =
  Protocol.configure ~epsilon:0.5
    ~algorithm:(Dps_mac.Decay.make ~delta:0.3 ())
    ~measure:(Measure.complete 8) ~lambda:rate ~max_hops:1 ()

let test_mac_decay_example_rate () =
  let cfg = mac_decay_configure 0.15 in
  Alcotest.(check bool) "rate 0.15 configures" true (cfg.Protocol.frame > 0);
  try
    ignore (mac_decay_configure 0.2);
    Alcotest.fail "rate 0.2 unexpectedly configures — update the examples"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "cli"
    [ ( "help",
        [ Alcotest.test_case "every flag listed" `Quick
            test_help_lists_every_flag;
          Alcotest.test_case "docs referenced" `Quick test_help_mentions_docs;
          Alcotest.test_case "header examples vs help" `Quick
            test_header_examples_match_help ] );
      ( "examples",
        [ Alcotest.test_case "mac/decay rate" `Quick
            test_mac_decay_example_rate ] ) ]
