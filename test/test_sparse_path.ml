(* The end-to-end sparse hot path: the protocol running directly on the
   tiled engine through [Tiled.as_measure], with no densification.
   - [Load_tracker] and [Tiled.Tracker] both satisfy [Tracker_intf.S]
     (compile-time module ascriptions);
   - at ε = 0 a full protocol run on the as_measure backend is
     byte-identical to the dense run — report, trajectories and
     telemetry — per topology family;
   - at ε > 0 a run whose config differs only in the measure keeps every
     packet-level observable identical (the measure only sizes frames
     and feeds the failed-buffer potential), and the potential gap obeys
     0 ≤ dense − sparse ≤ error_bound · max failed load, per frame;
   - the parallel stale rescan in [Load_tracker] is bit-identical to the
     sequential one (value and argmax) for any jobs/chunking;
   - a sparse [Scenario.build] never materialises a dense matrix. *)

module Rng = Dps_prelude.Rng
module Timeseries = Dps_prelude.Timeseries
module Measure = Dps_interference.Measure
module Tiled = Dps_interference.Tiled
module Load_tracker = Dps_interference.Load_tracker
module Topology = Dps_network.Topology
module Path = Dps_network.Path
module Graph = Dps_network.Graph
module Params = Dps_sinr.Params
module Power = Dps_sinr.Power
module Physics = Dps_sinr.Physics
module Sinr_measure = Dps_sinr.Sinr_measure
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Stability = Dps_core.Stability
module Oracle = Dps_sim.Oracle
module Stochastic = Dps_injection.Stochastic
module Delay_select = Dps_static.Delay_select
module Scenario = Dps_serve.Scenario
module Telemetry = Dps_telemetry.Telemetry
module Memory_sink = Dps_telemetry.Memory_sink

(* ------------------------------------- Tracker_intf conformance pins *)

module _ :
  Dps_interference.Tracker_intf.S
    with type t = Load_tracker.t
     and type backing = Measure.t =
  Load_tracker

module _ :
  Dps_interference.Tracker_intf.S
    with type t = Tiled.Tracker.t
     and type backing = Tiled.t =
  Tiled.Tracker

let tolerance = 1e-9
let bits = Int64.bits_of_float

(* --------------------------------------------------------- fixtures *)

let cloud_phys ?(alpha = 4.) ~links seed =
  let rng = Rng.create ~seed () in
  let side = 4. *. sqrt (float_of_int links) in
  let g = Topology.link_cloud rng ~links ~side ~length:1. in
  Physics.make (Params.make ~alpha ~noise:1e-9 ()) (Power.linear 2.) g

let phys_of_graph g =
  Physics.make (Params.make ~noise:1e-9 ()) (Power.linear 2.) g

(* One single-hop flow per link at equal rates, as the benches use. *)
let uniform_source g ~lambda =
  let m = Graph.link_count g in
  let per = lambda /. float_of_int m in
  Driver.Stochastic
    (Stochastic.make (List.init m (fun i -> [ (Path.of_links g [ i ], per) ])))

let first_feasible ?(algorithm = Delay_select.make ~c:4. ()) ~measure () =
  let rec go = function
    | [] -> Alcotest.fail "no configurable rate for the sparse-path fixture"
    | lambda :: rest -> (
      match
        Protocol.configure ~epsilon:0.5 ~algorithm ~measure ~lambda
          ~max_hops:1 ()
      with
      | config -> (config, lambda)
      | exception Invalid_argument _ -> go rest)
  in
  go [ 0.08; 0.04; 0.02; 0.01; 0.005 ]

(* ------------------------------- ε = 0 byte-identity, per topology *)

(* Dense measure vs [Tiled.as_measure] at ε = 0: same frame sizing, then
   a full traced run must agree byte for byte — reports, trajectories
   and every telemetry line. Exercised per topology family since tile
   occupancy (and hence slab layout) differs across them. *)
let check_zero_eps_identity name phys =
  let dense = Sinr_measure.linear_power phys in
  let tiled = Sinr_measure.linear_power_tiled ~epsilon:0. phys in
  let sparse = Tiled.as_measure tiled in
  Alcotest.(check bool) (name ^ ": dense is dense") true
    (Measure.is_dense dense);
  Alcotest.(check bool) (name ^ ": as_measure is not dense") false
    (Measure.is_dense sparse);
  Alcotest.(check (float 0.)) (name ^ ": ε=0 error bound") 0.
    (Measure.error_bound sparse);
  let g = Physics.graph phys in
  let cfg_d, lambda = first_feasible ~measure:dense () in
  let cfg_s, _ = first_feasible ~measure:sparse () in
  Alcotest.(check int) (name ^ ": frame") cfg_d.Protocol.frame
    cfg_s.Protocol.frame;
  Alcotest.(check int) (name ^ ": phase1 budget") cfg_d.Protocol.phase1_budget
    cfg_s.Protocol.phase1_budget;
  Alcotest.(check int) (name ^ ": cleanup budget")
    cfg_d.Protocol.cleanup_budget cfg_s.Protocol.cleanup_budget;
  let run config =
    let recorder = Memory_sink.create () in
    let telemetry = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let r =
      Driver.run_traced ~telemetry ~metrics_every:2 ~config
        ~oracle:(Oracle.Sinr phys) ~source:(uniform_source g ~lambda)
        ~frames:4 ~rng:(Rng.create ~seed:23 ()) ()
    in
    (r, recorder)
  in
  let rd, md = run cfg_d in
  let rs, ms = run cfg_s in
  Alcotest.(check int) (name ^ ": injected") rd.Protocol.injected
    rs.Protocol.injected;
  Alcotest.(check int) (name ^ ": delivered") rd.Protocol.delivered
    rs.Protocol.delivered;
  Alcotest.(check bool) (name ^ ": trajectory") true
    (Timeseries.to_array rd.Protocol.in_system
    = Timeseries.to_array rs.Protocol.in_system);
  Alcotest.(check bool) (name ^ ": potential bits") true
    (Array.map bits (Timeseries.to_array rd.Protocol.failed_interference)
    = Array.map bits (Timeseries.to_array rs.Protocol.failed_interference));
  Alcotest.(check (list string))
    (name ^ ": telemetry byte-identical")
    (Memory_sink.event_lines md) (Memory_sink.event_lines ms);
  Alcotest.(check bool) (name ^ ": snapshots byte-identical") true
    (Memory_sink.snapshots md = Memory_sink.snapshots ms)

let test_zero_eps_goldens () =
  check_zero_eps_identity "cloud" (cloud_phys ~links:24 7);
  check_zero_eps_identity "grid"
    (phys_of_graph (Topology.grid ~rows:4 ~cols:4 ~spacing:10.));
  check_zero_eps_identity "line"
    (phys_of_graph (Topology.line ~nodes:10 ~spacing:10.))

(* -------------------------- ε > 0 parity within the recorded bound *)

(* Same config except for the measure, under an algorithm that never
   consults the measure mid-run (oneshot — the physics oracle decides
   transmissions): the sparse run must reproduce every packet-level
   observable, and the failed-buffer potential may only sag below dense
   by at most error_bound · max failed load, frame by frame. Verdicts
   then agree by construction. (Algorithms that DO size windows from
   the measure, like delay-select, diverge discretely at ε > 0; their
   measure-level agreement is pinned in test_tiled.) *)
let prop_sparse_run_parity =
  QCheck.Test.make ~count:40
    ~name:"full run sparse-vs-dense: observables equal, potential in bound"
    QCheck.(pair small_nat (float_range 0.05 0.5))
    (fun (pick, epsilon) ->
      let links = 10 + (pick mod 16) in
      let phys = cloud_phys ~links (700 + pick) in
      let g = Physics.graph phys in
      let dense = Sinr_measure.linear_power phys in
      let tiled = Sinr_measure.linear_power_tiled ~epsilon phys in
      let sparse = Tiled.as_measure tiled in
      let cfg_d, lambda =
        first_feasible ~algorithm:Dps_static.Oneshot.algorithm ~measure:dense
          ()
      in
      let cfg_s = { cfg_d with Protocol.measure = sparse } in
      let run config =
        Driver.run ~config ~oracle:(Oracle.Sinr phys)
          ~source:(uniform_source g ~lambda) ~frames:4
          ~rng:(Rng.create ~seed:(800 + pick) ())
      in
      let rd = run cfg_d and rs = run cfg_s in
      let pot_d = Timeseries.to_array rd.Protocol.failed_interference in
      let pot_s = Timeseries.to_array rs.Protocol.failed_interference in
      let queue_d = Timeseries.to_array rd.Protocol.failed_queue in
      let bound = Measure.error_bound sparse in
      let pot_ok = ref (Array.length pot_d = Array.length pot_s) in
      if !pot_ok then
        Array.iteri
          (fun i d ->
            let gap = d -. pot_s.(i) in
            (* max failed load <= total failed packets in the system *)
            if gap < -.tolerance || gap > (bound *. queue_d.(i)) +. tolerance
            then pot_ok := false)
          pot_d;
      rd.Protocol.injected = rs.Protocol.injected
      && rd.Protocol.delivered = rs.Protocol.delivered
      && rd.Protocol.max_queue = rs.Protocol.max_queue
      && Timeseries.to_array rd.Protocol.in_system
         = Timeseries.to_array rs.Protocol.in_system
      && Timeseries.to_array rd.Protocol.failed_queue
         = Timeseries.to_array rs.Protocol.failed_queue
      && Stability.assess rd.Protocol.in_system
         = Stability.assess rs.Protocol.in_system
      && !pot_ok)

(* ----------------------------- parallel rescan is byte-identical *)

(* par_threshold 1 forces the chunked path for every stale rescan; the
   interference value (and through it the protocol's argmax-dependent
   behaviour) must be bit-equal to the sequential tracker after every
   operation, ties included. *)
let prop_rescan_par_bit_identical =
  QCheck.Test.make ~count:80
    ~name:"Load_tracker parallel rescan ≡ sequential (bits, every op)"
    QCheck.(
      pair small_nat
        (list_of_size (Gen.int_range 1 60)
           (triple small_nat (int_range 0 2) (float_range (-1.) 2.))))
    (fun (pick, ops) ->
      let links = 6 + (pick mod 20) in
      let phys = cloud_phys ~links (900 + pick) in
      let dense = Sinr_measure.linear_power phys in
      let seq = Load_tracker.create dense in
      let par = Load_tracker.create ~jobs:4 ~par_threshold:1 dense in
      List.for_all
        (fun (link, kind, c) ->
          let e = link mod links in
          (match kind with
          | 0 ->
            Load_tracker.add seq e;
            Load_tracker.add par e
          | 1 ->
            Load_tracker.remove seq e;
            Load_tracker.remove par e
          | _ ->
            Load_tracker.add_scaled seq e c;
            Load_tracker.add_scaled par e c);
          bits (Load_tracker.interference seq)
          = bits (Load_tracker.interference par))
        ops)

(* Protocol level: a traced sparse run with jobs=4 must reproduce the
   jobs=1 run byte for byte — report, trajectories and telemetry. *)
let test_protocol_jobs_identity () =
  let phys = cloud_phys ~links:24 31 in
  let g = Physics.graph phys in
  let tiled = Sinr_measure.linear_power_tiled ~epsilon:0.1 phys in
  let run jobs =
    let sparse = Tiled.as_measure ~jobs tiled in
    let config, lambda = first_feasible ~measure:sparse () in
    let recorder = Memory_sink.create () in
    let telemetry = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let r =
      Driver.run_traced ~jobs ~telemetry ~metrics_every:2 ~config
        ~oracle:(Oracle.Sinr phys) ~source:(uniform_source g ~lambda)
        ~frames:4 ~rng:(Rng.create ~seed:37 ()) ()
    in
    (r, recorder)
  in
  let r1, m1 = run 1 in
  let r4, m4 = run 4 in
  Alcotest.(check int) "injected" r1.Protocol.injected r4.Protocol.injected;
  Alcotest.(check int) "delivered" r1.Protocol.delivered
    r4.Protocol.delivered;
  Alcotest.(check bool) "trajectory" true
    (Timeseries.to_array r1.Protocol.in_system
    = Timeseries.to_array r4.Protocol.in_system);
  Alcotest.(check bool) "potential bits" true
    (Array.map bits (Timeseries.to_array r1.Protocol.failed_interference)
    = Array.map bits (Timeseries.to_array r4.Protocol.failed_interference));
  Alcotest.(check (list string))
    "telemetry byte-identical" (Memory_sink.event_lines m1)
    (Memory_sink.event_lines m4);
  Alcotest.(check bool) "snapshots byte-identical" true
    (Memory_sink.snapshots m1 = Memory_sink.snapshots m4)

(* ------------------------------ a sparse scenario stays sparse *)

let test_scenario_never_densifies () =
  let spec =
    Scenario.make ~sparse:0.1 ~model:"sinr-linear" ~topology:"grid:6x6"
      ~rate:0.04 ()
  in
  let built = Scenario.build spec in
  Alcotest.(check bool) "measure is the tiled backend" false
    (Measure.is_dense built.Scenario.measure);
  (match built.Scenario.tiled with
  | None -> Alcotest.fail "sparse build must expose the tiled engine"
  | Some tiled ->
    Alcotest.(check (float 0.))
      "error bound is the engine's max row bound"
      (Tiled.max_row_bound tiled)
      (Measure.error_bound built.Scenario.measure);
    Alcotest.(check int) "sizes agree" (Tiled.size tiled)
      (Measure.size built.Scenario.measure));
  (* The config the protocol will run on carries the same backend — the
     whole hot path shares the one un-densified measure identity. *)
  Alcotest.(check bool) "config shares the sparse measure" true
    (built.Scenario.config.Protocol.measure == built.Scenario.measure);
  let dense_spec =
    Scenario.make ~model:"sinr-linear" ~topology:"grid:6x6" ~rate:0.04 ()
  in
  let dense_built = Scenario.build dense_spec in
  Alcotest.(check bool) "a dense spec still builds dense" true
    (Measure.is_dense dense_built.Scenario.measure)

(* The ext accessors must agree with a densified copy entry for entry —
   the one place [to_measure] is still exercised, as the oracle for the
   closure-backed accessors (rows, columns, point lookups, row errors). *)
let test_as_measure_accessors_match_to_measure () =
  let phys = cloud_phys ~links:20 41 in
  let tiled = Sinr_measure.linear_power_tiled ~epsilon:0.2 phys in
  let ext = Tiled.as_measure tiled in
  let dense = Tiled.to_measure tiled in
  let m = Measure.size dense in
  Alcotest.(check int) "size" m (Measure.size ext);
  Alcotest.(check int) "nnz" (Measure.nnz dense) (Measure.nnz ext);
  Alcotest.(check int64) "max_row_sum bits"
    (bits (Measure.max_row_sum dense))
    (bits (Measure.max_row_sum ext));
  for e = 0 to m - 1 do
    Alcotest.(check int)
      (Printf.sprintf "row_nnz %d" e)
      (Measure.row_nnz dense e) (Measure.row_nnz ext e);
    Alcotest.(check (float 0.))
      (Printf.sprintf "row_error %d" e)
      (Tiled.row_bound tiled e) (Measure.row_error ext e);
    let collect iter =
      let acc = ref [] in
      iter (fun e' w -> acc := (e', bits w) :: !acc);
      List.rev !acc
    in
    if
      collect (Measure.iter_row dense e) <> collect (Measure.iter_row ext e)
    then Alcotest.failf "row %d differs between to_measure and as_measure" e;
    if
      collect (Measure.iter_column dense e)
      <> collect (Measure.iter_column ext e)
    then
      Alcotest.failf "column %d differs between to_measure and as_measure" e
  done;
  let rng = Rng.create ~seed:43 () in
  let load = Array.init m (fun _ -> float_of_int (Rng.int rng 6)) in
  Alcotest.(check int64) "interference bits"
    (bits (Measure.interference dense load))
    (bits (Measure.interference ext load));
  for e = 0 to m - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "interference_at %d bits" e)
      (bits (Measure.interference_at dense load e))
      (bits (Measure.interference_at ext load e))
  done

let () =
  Alcotest.run "sparse_path"
    [ ( "unit",
        [ Alcotest.test_case "ε=0 runs byte-identical per topology" `Quick
            test_zero_eps_goldens;
          Alcotest.test_case "jobs=1 ≡ jobs=4 through the protocol" `Quick
            test_protocol_jobs_identity;
          Alcotest.test_case "sparse scenario never densifies" `Quick
            test_scenario_never_densifies;
          Alcotest.test_case "as_measure ≡ to_measure entry for entry" `Quick
            test_as_measure_accessors_match_to_measure ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sparse_run_parity; prop_rescan_par_bit_identical ] ) ]
