(* Tests for the extension surface: power control (Section 6.2 /
   Corollary 14), the radio-network model, unreliable links (Section 9),
   and the centralized measure-greedy scheduler. *)

module Rng = Dps_prelude.Rng
module Point = Dps_geometry.Point
module Link = Dps_network.Link
module Graph = Dps_network.Graph
module Topology = Dps_network.Topology
module Measure = Dps_interference.Measure
module Conflict_graph = Dps_interference.Conflict_graph
module Params = Dps_sinr.Params
module Power = Dps_sinr.Power
module Physics = Dps_sinr.Physics
module Power_control = Dps_sinr.Power_control
module Sinr_measure = Dps_sinr.Sinr_measure
module Oracle = Dps_sim.Oracle
module Channel = Dps_sim.Channel
module Request = Dps_static.Request
module Algorithm = Dps_static.Algorithm
module Measure_greedy = Dps_static.Measure_greedy

(* -------------------------------------------------------- power control *)

(* Two collinear links pointing away from each other: cross-gains are
   weaker than own gains, so some power assignment works. *)
let diverging_pair () =
  let positions =
    [| Point.make 0. 0.; Point.make (-1.) 0.;  (* link 0 points left *)
       Point.make 3. 0.; Point.make 4. 0. |]  (* link 1 points right *)
  in
  Graph.create ~positions
    ~links:[ Link.make ~id:0 ~src:0 ~dst:1; Link.make ~id:1 ~src:2 ~dst:3 ]

(* Head-to-head links: each sender is closer to the other's receiver than
   to its own; no power assignment can satisfy both at beta = 1. *)
let crossfire_pair () =
  let positions =
    [| Point.make 0. 0.; Point.make 3. 0.;  (* link 0: 0 -> 3 (length 3) *)
       Point.make 2. 0.; Point.make 1. 0. |]  (* link 1: 2 -> 1 (length 1) *)
  in
  Graph.create ~positions
    ~links:[ Link.make ~id:0 ~src:0 ~dst:1; Link.make ~id:1 ~src:2 ~dst:3 ]

let test_pc_single_link () =
  let g = diverging_pair () in
  let prm = Params.make () in
  match Power_control.min_powers prm g [ 0 ] with
  | None -> Alcotest.fail "single link must be feasible"
  | Some p -> Alcotest.(check int) "one power" 1 (Array.length p)

let test_pc_empty () =
  let g = diverging_pair () in
  Alcotest.(check bool) "empty set feasible" true
    (Power_control.feasible (Params.make ()) g [])

let test_pc_diverging_feasible () =
  let g = diverging_pair () in
  let prm = Params.make () in
  Alcotest.(check bool) "diverging pair feasible" true
    (Power_control.feasible prm g [ 0; 1 ])

let test_pc_crossfire_infeasible () =
  let g = crossfire_pair () in
  let prm = Params.make () in
  (* Link 0's receiver (at x=3) is 1 away from link 1's sender (x=2) but 3
     from its own sender; link 1's receiver (x=1) is 1 away from link 0's
     sender. M's spectral radius exceeds 1. *)
  Alcotest.(check bool) "crossfire infeasible" false
    (Power_control.feasible prm g [ 0; 1 ])

let test_pc_min_powers_satisfy_sinr () =
  let g = diverging_pair () in
  let prm = Params.make ~noise:0.001 () in
  match Power_control.min_powers prm g [ 0; 1 ] with
  | None -> Alcotest.fail "expected feasible"
  | Some p ->
    (* Check the SINR constraints directly with the returned powers. *)
    let gain to_l from_l =
      let r = Graph.position g (Graph.link g to_l).Link.dst in
      let s = Graph.position g (Graph.link g from_l).Link.src in
      1. /. (Point.distance s r ** 3.)
    in
    List.iter
      (fun (i, j) ->
        let sinr =
          p.(i) *. gain i i /. ((p.(j) *. gain i j) +. Float.max prm.Params.noise 1.)
        in
        Alcotest.(check bool) "sinr >= beta" true (sinr >= 1. -. 1e-6))
      [ (0, 1); (1, 0) ]

let test_pc_duplicates_rejected () =
  let g = diverging_pair () in
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Power_control.min_powers: duplicate links") (fun () ->
      ignore (Power_control.min_powers (Params.make ()) g [ 0; 0 ]))

let test_pc_subset_monotone () =
  (* max_feasible_subset returns a feasible subset containing the shortest
     links it can keep. *)
  let rng = Rng.create ~seed:40 () in
  let g = Topology.random_geometric rng ~nodes:14 ~side:12. ~radius:6. in
  let m = Graph.link_count g in
  if m >= 3 then begin
    let prm = Params.make () in
    let all = List.init m Fun.id in
    let kept = Power_control.max_feasible_subset prm g all in
    Alcotest.(check bool) "kept subset is feasible" true
      (kept = [] || Power_control.feasible prm g kept)
  end

let test_pc_beats_fixed_powers () =
  (* Power control serves at least everything any fixed assignment can:
     a fixed-power-feasible set is power-control feasible. *)
  let rng = Rng.create ~seed:41 () in
  let g = Topology.random_geometric rng ~nodes:16 ~side:40. ~radius:12. in
  let m = Graph.link_count g in
  if m >= 2 then begin
    let prm = Params.make ~noise:1e-9 () in
    let phys = Physics.make prm (Power.linear 1.) g in
    (* Greedy fixed-power feasible set. *)
    let fixed = ref [] in
    for e = 0 to m - 1 do
      if Physics.feasible_set phys (e :: !fixed) then fixed := e :: !fixed
    done;
    Alcotest.(check bool) "fixed-feasible implies pc-feasible" true
      (Power_control.feasible prm g !fixed)
  end

let test_pc_oracle_adjudication () =
  let g = crossfire_pair () in
  let prm = Params.make () in
  let oracle = Oracle.Sinr_power_control (prm, g) in
  (* Both attempt: the longer link (0, length 3) is dropped. *)
  Alcotest.(check (list int)) "longest dropped" [ 1 ]
    (Oracle.adjudicate oracle [ 0; 1 ]);
  Alcotest.(check (list int)) "alone it passes" [ 0 ]
    (Oracle.adjudicate oracle [ 0 ])

(* ---------------------------------------------------------- radio model *)

let test_radio_conflicts () =
  (* Line 0-1-2: transmissions into node 1 from both sides conflict; links
     into different, non-adjacent receivers do not. *)
  let g = Topology.line ~nodes:4 ~spacing:1. in
  let cg = Conflict_graph.radio_model g in
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let l21 = Option.get (Graph.find_link g ~src:2 ~dst:1) in
  Alcotest.(check bool) "two senders into node 1 conflict" true
    (Conflict_graph.conflict cg l01 l21);
  let l10 = Option.get (Graph.find_link g ~src:1 ~dst:0) in
  let l23 = Option.get (Graph.find_link g ~src:2 ~dst:3) in
  Alcotest.(check bool) "1->0 vs 2->3 are independent" false
    (Conflict_graph.conflict cg l10 l23)

let test_radio_hidden_terminal () =
  (* The hidden-terminal pattern: sender 2 is a neighbour of receiver 1 of
     link 0->1, so 2->3 jams 0->1 ... only if there is a link 2->1 in g.
     On a line, 2 is adjacent to 1, so 2->3 conflicts with 0->1. *)
  let g = Topology.line ~nodes:4 ~spacing:1. in
  let cg = Conflict_graph.radio_model g in
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let l23 = Option.get (Graph.find_link g ~src:2 ~dst:3) in
  Alcotest.(check bool) "hidden terminal conflict" true
    (Conflict_graph.conflict cg l01 l23)

let test_radio_shared_sender () =
  let g = Topology.star ~leaves:3 ~radius:1. in
  let cg = Conflict_graph.radio_model g in
  let a = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let b = Option.get (Graph.find_link g ~src:0 ~dst:2) in
  Alcotest.(check bool) "same sender conflicts" true
    (Conflict_graph.conflict cg a b)

(* ---------------------------------------------------------- lossy links *)

let test_lossy_requires_rng () =
  let oracle = Oracle.Lossy (Oracle.Wireline, 0.5) in
  Alcotest.check_raises "needs rng"
    (Invalid_argument "Oracle.adjudicate: Lossy oracle needs an rng")
    (fun () -> ignore (Oracle.adjudicate oracle [ 0 ]))

let test_lossy_rejects_bad_probability () =
  let rng = Rng.create ~seed:41 () in
  List.iter
    (fun loss ->
      Alcotest.check_raises
        (Printf.sprintf "loss %g rejected" loss)
        (Invalid_argument "Oracle.adjudicate: Lossy probability outside [0, 1]")
        (fun () ->
          ignore
            (Oracle.adjudicate ~rng (Oracle.Lossy (Oracle.Wireline, loss))
               [ 0 ])))
    [ -0.1; 1.5; Float.nan ]

let test_lossy_extremes () =
  let rng = Rng.create ~seed:42 () in
  Alcotest.(check (list int)) "loss 0 = base" [ 0; 1 ]
    (List.sort compare
       (Oracle.adjudicate ~rng (Oracle.Lossy (Oracle.Wireline, 0.)) [ 0; 1 ]));
  Alcotest.(check (list int)) "loss 1 = nothing" []
    (Oracle.adjudicate ~rng (Oracle.Lossy (Oracle.Wireline, 1.)) [ 0; 1 ])

let test_lossy_rate () =
  let rng = Rng.create ~seed:43 () in
  let oracle = Oracle.Lossy (Oracle.Wireline, 0.3) in
  let channel = Channel.create ~rng ~oracle ~m:4 () in
  let delivered = ref 0 in
  let slots = 20_000 in
  for _ = 1 to slots do
    delivered := !delivered + List.length (Channel.step channel [ 0 ])
  done;
  let rate = float_of_int !delivered /. float_of_int slots in
  Alcotest.(check bool) "≈ 0.7 get through" true (rate > 0.67 && rate < 0.73)

let test_lossy_composes () =
  let rng = Rng.create ~seed:44 () in
  (* Lossy over MAC: a colliding pair still yields nothing. *)
  let oracle = Oracle.Lossy (Oracle.Mac, 0.) in
  Alcotest.(check (list int)) "base rule preserved" []
    (Oracle.adjudicate ~rng oracle [ 0; 1 ])

let test_lossy_protocol_stays_stable () =
  (* Section 9's "trivial extension": with loss probability p, scheduling
     still works — it only stretches effective schedule lengths by
     1/(1-p). Run the wireline protocol at a low rate under 10% loss. *)
  let g = Topology.line ~nodes:5 ~spacing:1. in
  let m = Graph.link_count g in
  let r = Dps_network.Routing.make g in
  let path = Option.get (Dps_network.Routing.path r ~src:0 ~dst:4) in
  let measure = Measure.identity m in
  (* Oneshot retries are handled by the clean-up phase; keep the rate low
     and raise the cleanup probability so lost packets recover quickly. *)
  let cfg =
    Dps_core.Protocol.configure ~cleanup_prob:0.5
      ~algorithm:Dps_static.Oneshot.algorithm ~measure ~lambda:0.3 ~max_hops:4
      ()
  in
  let rng = Rng.create ~seed:45 () in
  (* Near capacity so the loss actually produces phase-1 failures: per-link
     load ~0.2·T against a ~0.45·T budget, 40% of transmissions lost. *)
  let inj = Dps_injection.Stochastic.make [ [ (path, 0.2) ] ] in
  let report =
    Dps_core.Driver.run ~config:cfg
      ~oracle:(Oracle.Lossy (Oracle.Wireline, 0.35))
      ~source:(Dps_core.Driver.Stochastic inj) ~frames:300 ~rng
  in
  Alcotest.(check bool) "loss causes some failures" true
    (report.Dps_core.Protocol.failed_events > 0);
  match Dps_core.Stability.assess report.Dps_core.Protocol.in_system with
  | Dps_core.Stability.Unstable -> Alcotest.fail "should stay stable under 35% loss"
  | _ -> ()

(* -------------------------------------------------------- measure greedy *)

let test_greedy_wireline_serves_all () =
  let m = 4 in
  let channel = Channel.create ~oracle:Oracle.Wireline ~m () in
  let rng = Rng.create () in
  let requests = Array.init 20 (fun k -> Request.make ~link:(k mod m) ~key:k) in
  let algo = Measure_greedy.make ~priority:float_of_int () in
  let outcome =
    Algorithm.execute algo ~channel ~rng ~measure:(Measure.identity m) ~requests
  in
  Alcotest.(check bool) "all served" true (Algorithm.all_served outcome);
  (* Identity measure: rounds hold one packet per link, so congestion slots. *)
  Alcotest.(check int) "slots = congestion" 5 outcome.Algorithm.slots_used

let test_greedy_deterministic () =
  let run () =
    let m = 5 in
    let channel = Channel.create ~oracle:Oracle.Wireline ~m () in
    let rng = Rng.create ~seed:50 () in
    let requests = Array.init 23 (fun k -> Request.make ~link:(k * 3 mod m) ~key:k) in
    let algo = Measure_greedy.make ~priority:(fun e -> float_of_int (m - e)) () in
    (Algorithm.execute algo ~channel ~rng ~measure:(Measure.identity m) ~requests)
      .Algorithm.slots_used
  in
  Alcotest.(check int) "same schedule" (run ()) (run ())

let test_greedy_power_control_end_to_end () =
  (* The Corollary 14 pipeline: Section 6.2 measure + length priority +
     power-control oracle. *)
  let rng = Rng.create ~seed:51 () in
  let g = Topology.random_geometric rng ~nodes:14 ~side:40. ~radius:14. in
  let m = Graph.link_count g in
  if m >= 4 then begin
    let prm = Params.make ~noise:1e-9 () in
    let phys = Physics.make prm (Power.uniform 1.) g in
    let measure = Sinr_measure.power_control phys in
    let channel = Channel.create ~oracle:(Oracle.Sinr_power_control (prm, g)) ~m () in
    let requests = Array.init (2 * m) (fun k -> Request.make ~link:(k mod m) ~key:k) in
    let algo =
      Measure_greedy.make ~budget:0.3 ~priority:(Graph.link_length g) ()
    in
    let outcome = Algorithm.execute algo ~channel ~rng ~measure ~requests in
    Alcotest.(check bool) "served most requests" true
      (Algorithm.served_count outcome > (2 * m * 3) / 4)
  end

let test_greedy_respects_budget () =
  let m = 3 in
  let channel = Channel.create ~oracle:Oracle.Wireline ~m () in
  let rng = Rng.create () in
  let requests = Array.init 30 (fun k -> Request.make ~link:0 ~key:k) in
  let algo = Measure_greedy.make ~priority:float_of_int () in
  let outcome =
    algo.Algorithm.run ~channel ~rng ~measure:(Measure.identity m) ~requests
      ~budget:7
  in
  Alcotest.(check bool) "within budget" true (outcome.Algorithm.slots_used <= 7)

(* ------------------------------------------------------------ property *)

let prop_pc_fixed_feasible_subsets =
  QCheck.Test.make ~count:40
    ~name:"any uniform-power feasible pair is power-control feasible"
    QCheck.(int_range 0 400)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let g = Topology.random_geometric rng ~nodes:10 ~side:25. ~radius:10. in
      let m = Graph.link_count g in
      if m < 2 then true
      else begin
        let prm = Params.make () in
        let phys = Physics.make prm (Power.uniform 1.) g in
        let a = Rng.int rng m and b = Rng.int rng m in
        if a = b then true
        else begin
          (* Strict feasibility: pairs sitting exactly on the SINR = beta
             boundary (e.g. sharing a sender) have rho(M) = 1 and are
             legitimately power-control infeasible. *)
          let strict =
            Physics.sinr phys ~active:[ a; b ] a > 1. +. 1e-6
            && Physics.sinr phys ~active:[ a; b ] b > 1. +. 1e-6
          in
          if strict then Power_control.feasible prm g [ a; b ] else true
        end
      end)

let prop_pc_oracle_returns_feasible =
  QCheck.Test.make ~count:40
    ~name:"power-control oracle's grant is always feasible"
    QCheck.(pair (int_range 0 400) (list (int_range 0 30)))
    (fun (seed, raw) ->
      let rng = Rng.create ~seed () in
      let g = Topology.random_geometric rng ~nodes:10 ~side:25. ~radius:10. in
      let m = Graph.link_count g in
      if m = 0 then true
      else begin
        let prm = Params.make () in
        let attempts = List.sort_uniq compare (List.map (fun e -> e mod m) raw) in
        let granted =
          Oracle.adjudicate (Oracle.Sinr_power_control (prm, g)) attempts
        in
        granted = [] || Power_control.feasible prm g granted
      end)

let prop_lossy_subset_of_base =
  QCheck.Test.make ~count:100 ~name:"lossy successes are a subset of base's"
    QCheck.(pair (int_range 0 1000) (list (int_range 0 5)))
    (fun (seed, attempts) ->
      let rng = Rng.create ~seed () in
      let base = Oracle.Wireline in
      let lossy = Oracle.Lossy (base, 0.5) in
      let successes = Oracle.adjudicate ~rng lossy attempts in
      List.for_all (fun e -> List.mem e attempts) successes)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [ ( "power-control",
        [ quick "single link" test_pc_single_link;
          quick "empty set" test_pc_empty;
          quick "diverging pair feasible" test_pc_diverging_feasible;
          quick "crossfire infeasible" test_pc_crossfire_infeasible;
          quick "min powers satisfy SINR" test_pc_min_powers_satisfy_sinr;
          quick "duplicates rejected" test_pc_duplicates_rejected;
          quick "max feasible subset" test_pc_subset_monotone;
          quick "dominates fixed powers" test_pc_beats_fixed_powers;
          quick "oracle adjudication" test_pc_oracle_adjudication ] );
      ( "radio-model",
        [ quick "receiver conflicts" test_radio_conflicts;
          quick "hidden terminal" test_radio_hidden_terminal;
          quick "shared sender" test_radio_shared_sender ] );
      ( "lossy",
        [ quick "requires rng" test_lossy_requires_rng;
          quick "rejects bad probability" test_lossy_rejects_bad_probability;
          quick "extremes" test_lossy_extremes;
          quick "empirical rate" test_lossy_rate;
          quick "composes with base rule" test_lossy_composes;
          Alcotest.test_case "protocol stable under loss" `Slow
            test_lossy_protocol_stays_stable ] );
      ( "measure-greedy",
        [ quick "wireline serves all" test_greedy_wireline_serves_all;
          quick "deterministic" test_greedy_deterministic;
          quick "power-control end to end" test_greedy_power_control_end_to_end;
          quick "respects budget" test_greedy_respects_budget ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pc_fixed_feasible_subsets;
            prop_pc_oracle_returns_feasible;
            prop_lossy_subset_of_base ] ) ]
