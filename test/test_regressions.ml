(* Regression tests: each case pins a bug found (and fixed) while building
   this reproduction. Kept separate so the failure modes stay documented. *)

module Rng = Dps_prelude.Rng
module Point = Dps_geometry.Point
module Link = Dps_network.Link
module Graph = Dps_network.Graph
module Topology = Dps_network.Topology
module Measure = Dps_interference.Measure
module Params = Dps_sinr.Params
module Power = Dps_sinr.Power
module Physics = Dps_sinr.Physics
module Power_control = Dps_sinr.Power_control
module Oracle = Dps_sim.Oracle
module Channel = Dps_sim.Channel
module Request = Dps_static.Request
module Algorithm = Dps_static.Algorithm
module Decay = Dps_mac.Decay
module Timeseries = Dps_prelude.Timeseries
module Stability = Dps_core.Stability

(* --- Bug 1: Algorithm 2's stage-1 window read literally as q^i·n gives
   per-window density 1/q > 1 and the pending count *grows*; the fix uses
   q^(i-1)·n (density 1). Regression: a large batch must drain within the
   Lemma 15 budget, which only happens with the corrected window. *)
let test_decay_drains_within_lemma15_budget () =
  let stations = 8 in
  let n = 600 in
  let channel = Channel.create ~oracle:Oracle.Mac ~m:stations () in
  let rng = Rng.create ~seed:90 () in
  let requests = Array.init n (fun k -> Request.make ~link:(k mod stations) ~key:k) in
  let algo = Decay.make ~delta:0.1 () in
  let outcome =
    Algorithm.execute algo ~channel ~rng
      ~measure:(Dps_mac.Mac_measure.make ~m:stations) ~requests
  in
  Alcotest.(check bool) "all served" true (Algorithm.all_served outcome);
  (* (1+δ)e·n ≈ 3n plus the tail; the broken window needed far more. *)
  Alcotest.(check bool) "within 4n slots" true
    (outcome.Algorithm.slots_used <= 4 * n)

(* --- Bug 2: the stability verdict extrapolated tail growth against the
   tail mean with a >= 1 cut, which pure linear growth (ratio 2/3) can
   never reach: divergence was reported "marginal" forever. *)
let test_linear_growth_is_unstable () =
  let t = Timeseries.create () in
  for i = 0 to 399 do
    Timeseries.add t (float_of_int i *. 2.5)
  done;
  Alcotest.(check string) "pure linear growth" "unstable"
    (Stability.to_string (Stability.assess t))

(* --- Bug 3: power-iteration spectral-radius estimates read off the last
   ∞-norm oscillate on near-bipartite gain matrices (two links that mostly
   affect each other): ratios alternate a<1, b>1 with ab > 1, and the last
   iterate can claim feasibility for an infeasible set. The crossfire pair
   is exactly such a 2-periodic matrix. *)
let test_crossfire_oscillation_detected () =
  let positions =
    [| Point.make 0. 0.; Point.make 3. 0.;
       Point.make 2. 0.; Point.make 1. 0. |]
  in
  let g =
    Graph.create ~positions
      ~links:[ Link.make ~id:0 ~src:0 ~dst:1; Link.make ~id:1 ~src:2 ~dst:3 ]
  in
  (* M = [[0, a],[b, 0]] has rho = sqrt(ab) but step norms alternate. *)
  Alcotest.(check bool) "infeasible despite oscillation" false
    (Power_control.feasible (Params.make ()) g [ 0; 1 ])

(* --- Bug 4: colocated sender/receiver (antiparallel links) give infinite
   normalized gain; NaNs then defeat every float comparison and the set was
   declared feasible. *)
let test_antiparallel_links_infeasible () =
  let g = Topology.line ~nodes:2 ~spacing:5. in
  (* Links 0 and 1 are the two directions of the same edge: each sender
     sits on the other's receiver. *)
  Alcotest.(check bool) "antiparallel pair infeasible" false
    (Power_control.feasible (Params.make ()) g [ 0; 1 ]);
  Alcotest.(check bool) "min_powers agrees" true
    (Power_control.min_powers (Params.make ()) g [ 0; 1 ] = None)

let test_min_powers_always_finite () =
  (* Whatever the instance, a Some result must be finite. *)
  let rng = Rng.create ~seed:91 () in
  for _ = 1 to 20 do
    let g = Topology.random_geometric rng ~nodes:12 ~side:30. ~radius:12. in
    let m = Graph.link_count g in
    if m >= 3 then begin
      let links = [ 0; m / 2; m - 1 ] |> List.sort_uniq compare in
      match Power_control.min_powers (Params.make ()) g links with
      | None -> ()
      | Some p ->
        Alcotest.(check bool) "finite witness" true
          (Array.for_all Float.is_finite p)
    end
  done

(* --- Bug 5: duplicate attempts on one link must fail (link collision) but
   still radiate interference; an early version deduplicated them away. *)
let test_duplicate_attempts_radiate () =
  let m = 8 in
  let phys = Dps_core.Lower_bound.physics ~m in
  let channel = Channel.create ~oracle:(Oracle.Sinr phys) ~m () in
  let long = m - 1 in
  Alcotest.(check (list int)) "colliding short pair still jams the long link"
    [] (Channel.step channel [ 0; 0; long ])

(* --- Bug 6: the MAC decay duration was stated in n (the request count)
   instead of I, which made the clean-up budget A(1, m·J) proportional to
   the whole frame and the fixed point diverge. *)
let test_decay_duration_in_i_terms () =
  let algo = Decay.make ~delta:0.1 () in
  let d_small_i = algo.Algorithm.duration ~m:8 ~i:1. ~n:10_000 in
  (* A(1, n) must be tiny even for huge n (polylog tail only). *)
  Alcotest.(check bool) "A(1, n) independent of n's linear term" true
    (d_small_i < 500)

(* --- Bug 7: Stochastic.draw must never inject more than one packet per
   generator per slot even when the distribution has many choices near
   mass 1 (the multinomial segments must not overlap). *)
let test_draw_single_packet_dense_distribution () =
  let g = Topology.line ~nodes:5 ~spacing:1. in
  let r = Dps_network.Routing.make g in
  let path src dst = Option.get (Dps_network.Routing.path r ~src ~dst) in
  let inj =
    Dps_injection.Stochastic.make
      [ List.map (fun d -> (path 0 d, 0.24)) [ 1; 2; 3; 4 ] ]
  in
  let rng = Rng.create ~seed:92 () in
  for slot = 0 to 2000 do
    Alcotest.(check bool) "at most one" true
      (List.length (Dps_injection.Stochastic.draw inj rng ~slot) <= 1)
  done

(* --- Bug 8: per-slot delay-class scans made phases O(n·T); the bucketed
   rewrite must keep a dense batch affordable. This is a performance
   regression guard expressed as an operation-count proxy: the run must
   finish well within its budget on a large batch quickly enough to not
   trip the alcotest timeout (conservative smoke bound). *)
let test_delay_select_large_batch_fast () =
  let m = 4 in
  let channel = Channel.create ~oracle:Oracle.Wireline ~m () in
  let rng = Rng.create ~seed:93 () in
  let requests = Array.init 20_000 (fun k -> Request.make ~link:(k mod m) ~key:k) in
  let algo = Dps_static.Delay_select.make () in
  let t0 = Sys.time () in
  let outcome =
    Algorithm.execute algo ~channel ~rng ~measure:(Measure.identity m) ~requests
  in
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool) "all served" true (Algorithm.all_served outcome);
  Alcotest.(check bool) "fast enough (O(n + slots))" true (elapsed < 5.)

(* --- Bug 9: Physics parallel links at moderate gap are FEASIBLE (the
   cross distance exceeds the link length); a test once assumed otherwise.
   Pin the geometry fact itself. *)
let test_parallel_gap_geometry () =
  let positions =
    [| Point.make 0. 0.; Point.make 0. 1.;
       Point.make 0.5 0.; Point.make 0.5 1. |]
  in
  let g =
    Graph.create ~positions
      ~links:[ Link.make ~id:0 ~src:0 ~dst:1; Link.make ~id:1 ~src:2 ~dst:3 ]
  in
  let phys = Physics.make (Params.make ()) (Power.uniform 1.) g in
  Alcotest.(check bool) "parallel pair at gap 0.5 coexists" true
    (Physics.feasible_set phys [ 0; 1 ])

(* --- Determinism goldens: the incremental interference engine
   (Load_tracker, CSR Measure, the rewired measure-greedy / Channel /
   Protocol bookkeeping) is a pure refactor of the hot loop — fixed-seed
   runs must reproduce the pre-refactor reports bit for bit. The goldens
   below were captured against the tuple-array Measure and the O(k²)
   greedy admission; any drift means the rewrite changed a decision, not
   just its cost. Both scenarios use oracles whose outcome is independent
   of the active-list order Channel now produces. *)

module Routing = Dps_network.Routing
module Path = Dps_network.Path
module Conflict_graph = Dps_interference.Conflict_graph
module Sinr_measure = Dps_sinr.Sinr_measure
module Stochastic = Dps_injection.Stochastic
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver

let check_series name expected ts =
  Alcotest.(check (array (float 0.)))
    name expected (Timeseries.to_array ts)

(* Random multi-hop traffic drawn through the same rng that later drives
   the run — part of the pinned seed path. *)
let golden_traffic rng g measure ~flows ~max_hops ~rate ~target =
  let routing = Routing.make g in
  let n = Graph.node_count g in
  let gens = ref [] in
  let tries = ref 0 in
  while List.length !gens < flows && !tries < 200 * flows do
    incr tries;
    let src = Rng.int rng n and dst = Rng.int rng n in
    if src <> dst then
      match Routing.path routing ~src ~dst with
      | Some p when Path.length p <= max_hops ->
        gens := [ (p, rate) ] :: !gens
      | _ -> ()
  done;
  Stochastic.calibrate (Stochastic.make !gens) measure ~target

(* Scenario A: measure-greedy admission + SINR power-control oracle on a
   random geometric network — exercises the greedy rewire end to end. *)
let test_golden_measure_greedy_sinr () =
  let rng = Rng.create ~seed:4242 () in
  let g = Topology.random_geometric rng ~nodes:14 ~side:50. ~radius:18. in
  let prm = Params.make ~noise:1e-9 () in
  let phys = Physics.make prm (Power.uniform 1.) g in
  let measure = Sinr_measure.power_control phys in
  let algorithm =
    Dps_static.Measure_greedy.make ~budget:0.3
      ~priority:(Graph.link_length g) ()
  in
  let lambda = 0.02 in
  let inj =
    golden_traffic rng g measure ~flows:8 ~max_hops:8 ~rate:0.005
      ~target:lambda
  in
  let cfg = Protocol.configure ~algorithm ~measure ~lambda ~max_hops:8 () in
  Alcotest.(check int) "frame" 2717 cfg.Protocol.frame;
  let r =
    Driver.run ~config:cfg
      ~oracle:(Oracle.Sinr_power_control (prm, g))
      ~source:(Driver.Stochastic inj) ~frames:25 ~rng
  in
  Alcotest.(check int) "injected" 789 r.Protocol.injected;
  Alcotest.(check int) "delivered" 713 r.Protocol.delivered;
  Alcotest.(check int) "failed events" 0 r.Protocol.failed_events;
  Alcotest.(check int) "max queue" 90 r.Protocol.max_queue;
  check_series "in_system"
    [| 28.; 54.; 69.; 90.; 75.; 66.; 73.; 79.; 67.; 54.; 68.; 71.; 72.;
       72.; 67.; 67.; 62.; 75.; 77.; 72.; 58.; 68.; 69.; 77.; 76. |]
    r.Protocol.in_system;
  check_series "failed_queue" (Array.make 25 0.) r.Protocol.failed_queue;
  check_series "potential" (Array.make 25 0.) r.Protocol.potential

(* Scenario B: delay-select + conflict-graph oracle, injected at 6× the
   dimensioned rate so phase 1 overflows every frame — exercises the
   failed-buffer counters and the clean-up dequeue path under load. *)
let test_golden_overloaded_cleanup () =
  let rng = Rng.create ~seed:1717 () in
  let g = Topology.grid ~rows:3 ~cols:3 ~spacing:1. in
  let cg = Conflict_graph.distance2 g in
  let order = Conflict_graph.degeneracy_order cg in
  let measure = Conflict_graph.to_measure cg ~order in
  let algorithm = Dps_static.Delay_select.make ~c:4. () in
  let lambda = 0.03 in
  let inj =
    golden_traffic rng g measure ~flows:6 ~max_hops:6 ~rate:0.004
      ~target:(6. *. lambda)
  in
  let cfg = Protocol.configure ~algorithm ~measure ~lambda ~max_hops:6 () in
  Alcotest.(check int) "frame" 1608 cfg.Protocol.frame;
  let r =
    Driver.run ~config:cfg ~oracle:(Oracle.Conflict cg)
      ~source:(Driver.Stochastic inj) ~frames:25 ~rng
  in
  Alcotest.(check int) "injected" 3470 r.Protocol.injected;
  Alcotest.(check int) "delivered" 1712 r.Protocol.delivered;
  Alcotest.(check int) "failed events" 1535 r.Protocol.failed_events;
  Alcotest.(check int) "max queue" 1758 r.Protocol.max_queue;
  check_series "in_system"
    [| 137.; 261.; 325.; 389.; 447.; 522.; 578.; 653.; 737.; 802.; 839.;
       903.; 941.; 1012.; 1074.; 1156.; 1242.; 1311.; 1361.; 1417.; 1499.;
       1573.; 1643.; 1704.; 1758. |]
    r.Protocol.in_system;
  check_series "failed_queue"
    [| 0.; 0.; 75.; 163.; 212.; 292.; 361.; 433.; 497.; 563.; 627.; 680.;
       746.; 788.; 841.; 896.; 986.; 1073.; 1144.; 1205.; 1273.; 1339.;
       1387.; 1466.; 1527. |]
    r.Protocol.failed_queue;
  check_series "potential"
    [| 0.; 0.; 129.; 276.; 360.; 510.; 629.; 739.; 833.; 938.; 1047.;
       1134.; 1251.; 1313.; 1398.; 1490.; 1646.; 1791.; 1908.; 2011.;
       2125.; 2234.; 2316.; 2448.; 2554. |]
    r.Protocol.potential

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "regressions"
    [ ( "determinism-goldens",
        [ quick "measure-greedy + SINR power control (seed 4242)"
            test_golden_measure_greedy_sinr;
          quick "overloaded clean-up, conflict graph (seed 1717)"
            test_golden_overloaded_cleanup ] );
      ( "fixed-bugs",
        [ quick "decay window exponent (Lemma 15 drift)" test_decay_drains_within_lemma15_budget;
          quick "linear growth detected unstable" test_linear_growth_is_unstable;
          quick "spectral radius oscillation" test_crossfire_oscillation_detected;
          quick "antiparallel links infeasible" test_antiparallel_links_infeasible;
          quick "min powers finite" test_min_powers_always_finite;
          quick "duplicate attempts radiate" test_duplicate_attempts_radiate;
          quick "decay duration in I" test_decay_duration_in_i_terms;
          quick "one packet per generator" test_draw_single_packet_dense_distribution;
          quick "delay-select batch performance" test_delay_select_large_batch_fast;
          quick "parallel-gap geometry" test_parallel_gap_geometry ] ) ]
