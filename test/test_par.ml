(* The parallel execution layer (Dps_par) and its determinism contract.

   Everything here is one claim tested from several sides: [jobs] (and
   [chunk]) change wall-clock time and nothing else. Par.map must be
   extensionally List.map — results, ordering, and even the exception a
   failing batch raises — and the two fan-out call sites in dps_core
   (Driver.run_many, Sweep.critical_rate) must produce byte-identical
   reports and telemetry at every width. The toy-size jobs=2 golden also
   runs on every `dune runtest` via the @par-smoke alias. *)

module Par = Dps_par.Par
module Rng = Dps_prelude.Rng
module Timeseries = Dps_prelude.Timeseries
module Topology = Dps_network.Topology
module Path = Dps_network.Path
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Sweep = Dps_core.Sweep
module Oracle = Dps_sim.Oracle
module Stochastic = Dps_injection.Stochastic
module Telemetry = Dps_telemetry.Telemetry
module Memory_sink = Dps_telemetry.Memory_sink

(* --- Par.map ≡ List.map ------------------------------------------- *)

let prop_map_is_list_map =
  QCheck.Test.make ~count:100 ~name:"Par.map ≡ List.map at every width"
    QCheck.(pair (list small_int) (int_range 1 6))
    (fun (xs, jobs) ->
      let f x = (x * x) - (3 * x) + 1 in
      Par.map ~jobs f xs = List.map f xs)

let prop_chunk_cannot_change_result =
  QCheck.Test.make ~count:100 ~name:"chunk size cannot change the result"
    QCheck.(triple (list small_int) (int_range 2 5) (int_range 1 7))
    (fun (xs, jobs, chunk) ->
      let f x = string_of_int (x + 7) in
      Par.map ~chunk ~jobs f xs = List.map f xs)

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Par.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Par.map ~jobs:4 succ [ 7 ])

let test_map_validation () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Par.map: jobs must be >= 1") (fun () ->
      ignore (Par.map ~jobs:0 succ [ 1 ]));
  Alcotest.check_raises "chunk = 0"
    (Invalid_argument "Par.map: chunk must be >= 1") (fun () ->
      ignore (Par.map ~chunk:0 ~jobs:2 succ [ 1 ]));
  Alcotest.check_raises "pool jobs = 0"
    (Invalid_argument "Par.pool: jobs must be >= 1") (fun () ->
      ignore (Par.pool ~jobs:0 ()))

(* The sequential run raises the exception of the first failing item;
   the parallel run may evaluate later items too, but must surface the
   same exception. *)
let test_exception_determinism () =
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
  let xs = [ 1; 3; 5; 6; 9; 2 ] in
  let observe jobs =
    match Par.map ~jobs f xs with
    | _ -> Alcotest.fail "expected a raise"
    | exception e -> Printexc.to_string e
  in
  let sequential = observe 1 in
  Alcotest.(check string) "jobs=4 raises the sequential exception"
    sequential (observe 4);
  Alcotest.(check string) "smallest index wins" (Printexc.to_string
    (Failure "3")) sequential

let test_pool_reuse () =
  Par.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "width" 3 (Par.jobs p);
      for batch = 1 to 5 do
        let xs = List.init (batch * 7) (fun i -> i - batch) in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" batch)
          (List.map (fun x -> (2 * x) + batch) xs)
          (Par.map_pool p (fun x -> (2 * x) + batch) xs)
      done)

(* --- the dps_core call sites -------------------------------------- *)

let stations = 6
let lambda = 0.15

let mac_setup () =
  let g = Topology.mac_channel ~stations in
  let config =
    Protocol.configure ~epsilon:0.5
      ~algorithm:(Dps_mac.Decay.make ~delta:0.3 ())
      ~measure:(Dps_mac.Mac_measure.make ~m:stations)
      ~lambda ~max_hops:1 ()
  in
  let per = lambda /. float_of_int stations in
  let inj =
    Stochastic.make (List.init stations (fun i -> [ (Path.of_links g [ i ], per) ]))
  in
  (config, inj)

let check_same_report label (a : Protocol.report) (b : Protocol.report) =
  Alcotest.(check int) (label ^ ": injected") a.Protocol.injected
    b.Protocol.injected;
  Alcotest.(check int) (label ^ ": delivered") a.Protocol.delivered
    b.Protocol.delivered;
  Alcotest.(check int) (label ^ ": failed_events") a.Protocol.failed_events
    b.Protocol.failed_events;
  Alcotest.(check int) (label ^ ": max_queue") a.Protocol.max_queue
    b.Protocol.max_queue;
  Alcotest.(check bool) (label ^ ": in_system trajectory") true
    (Timeseries.to_array a.Protocol.in_system
    = Timeseries.to_array b.Protocol.in_system)

(* Fixed-seed golden: run_many at jobs=1 and jobs=4 from the same seeds —
   reports field-identical, flushed telemetry byte-identical. *)
let test_run_many_jobs_invariant () =
  let config, inj = mac_setup () in
  let seeds = [ 41; 42; 43; 44; 45 ] in
  let observe jobs =
    let recorder = Memory_sink.create () in
    let telemetry = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let reports =
      Driver.run_many ~jobs ~telemetry ~metrics_every:2 ~config
        ~oracle:Oracle.Mac ~source:(Driver.Stochastic inj) ~seeds ~frames:4 ()
    in
    (reports, recorder)
  in
  let r1, m1 = observe 1 in
  let r4, m4 = observe 4 in
  Alcotest.(check int) "one report per seed" (List.length seeds)
    (List.length r1);
  List.iteri
    (fun i (a, b) -> check_same_report (Printf.sprintf "seed %d" i) a b)
    (List.combine r1 r4);
  Alcotest.(check (list string)) "event stream byte-identical"
    (Memory_sink.event_lines m1) (Memory_sink.event_lines m4);
  Alcotest.(check int) "same snapshot count"
    (List.length (Memory_sink.snapshots m1))
    (List.length (Memory_sink.snapshots m4));
  Alcotest.(check bool) "snapshots identical" true
    (Memory_sink.snapshots m1 = Memory_sink.snapshots m4);
  Alcotest.(check int) "same flush count" (Memory_sink.flushes m1)
    (Memory_sink.flushes m4)

(* Same claim for the sweep: at fixed [speculate] the probe schedule —
   and with it the outcome and every emitted event — cannot depend on
   [jobs]. *)
let test_sweep_jobs_invariant () =
  let probe r = r <= 0.37 in
  let observe jobs =
    let recorder = Memory_sink.create () in
    let telemetry = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let outcome =
      Sweep.critical_rate ~telemetry ~jobs ~speculate:4 ~probe ~lo:0.01 ~hi:1.
        ~tolerance:0.01 ()
    in
    (outcome, recorder)
  in
  let o1, m1 = observe 1 in
  let o4, m4 = observe 4 in
  Alcotest.(check (float 1e-12)) "same critical" o1.Sweep.critical
    o4.Sweep.critical;
  Alcotest.(check bool) "same probe history" true
    (o1.Sweep.stable_at = o4.Sweep.stable_at
    && o1.Sweep.unstable_at = o4.Sweep.unstable_at);
  Alcotest.(check (list string)) "event stream byte-identical"
    (Memory_sink.event_lines m1) (Memory_sink.event_lines m4)

(* stable_at / unstable_at are in probe order (they were reversed once:
   the lists are built by prepending). lo probes first, hi second, then
   midpoints — 0.5 stable, 0.7 and 0.6 unstable, in that order. *)
let test_outcome_probe_order () =
  let outcome =
    Sweep.critical_rate ~probe:(fun r -> r <= 0.5) ~lo:0.1 ~hi:0.9
      ~tolerance:0.1 ()
  in
  Alcotest.(check (list (float 1e-9))) "stable_at in probe order"
    [ 0.1; 0.5 ] outcome.Sweep.stable_at;
  Alcotest.(check (list (float 1e-9))) "unstable_at in probe order"
    [ 0.9; 0.7; 0.6 ] outcome.Sweep.unstable_at;
  Alcotest.(check (float 1e-9)) "critical" 0.5 outcome.Sweep.critical

let () =
  Alcotest.run "par"
    [ ( "map",
        [ QCheck_alcotest.to_alcotest prop_map_is_list_map;
          QCheck_alcotest.to_alcotest prop_chunk_cannot_change_result;
          Alcotest.test_case "empty / singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "validation" `Quick test_map_validation;
          Alcotest.test_case "exception determinism" `Quick
            test_exception_determinism;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse ] );
      ( "call sites",
        [ Alcotest.test_case "run_many jobs-invariant" `Quick
            test_run_many_jobs_invariant;
          Alcotest.test_case "sweep jobs-invariant" `Quick
            test_sweep_jobs_invariant;
          Alcotest.test_case "outcome in probe order" `Quick
            test_outcome_probe_order ] ) ]
