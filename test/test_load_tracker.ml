(* Property tests for the incremental interference engine: a Load_tracker
   driven by random single-link update sequences must agree with
   recomputing Measure.interference from scratch — to 1e-9, after every
   update, on every measure family the repo uses (identity, complete,
   random sparse rows, SINR affectance). *)

module Rng = Dps_prelude.Rng
module Measure = Dps_interference.Measure
module Load_tracker = Dps_interference.Load_tracker
module Topology = Dps_network.Topology
module Params = Dps_sinr.Params
module Power = Dps_sinr.Power
module Physics = Dps_sinr.Physics
module Sinr_measure = Dps_sinr.Sinr_measure

let tolerance = 1e-9

(* ------------------------------------------------------------ measures *)

(* Built once: a 3x3 grid under linear powers — a real (dense) affectance
   matrix, m = 24 links. *)
let sinr_measure =
  lazy
    (let g = Topology.grid ~rows:3 ~cols:3 ~spacing:10. in
     let phys =
       Physics.make
         (Params.make ~alpha:3. ~beta:1. ~noise:1e-9 ())
         (Power.linear 2.) g
     in
     Sinr_measure.linear_power phys)

(* Random sparse rows: each off-diagonal entry present w.p. 0.4 with a
   weight in (0, 1]. *)
let random_rows_measure ~m seed =
  let rng = Rng.create ~seed () in
  let rows =
    Array.init m (fun e ->
        List.filter_map
          (fun e' ->
            if e' <> e && Rng.float rng 1. < 0.4 then
              Some (e', 0.01 +. Rng.float rng 0.99)
            else None)
          (List.init m Fun.id))
  in
  Measure.of_rows rows

(* ----------------------------------------------------------- machinery *)

(* An op is (link, kind, scale): kind mod 3 selects add / remove /
   add_scaled. The naive side mirrors the op on a plain load vector and
   recomputes from scratch. *)
let apply w tracker load (link, kind, c) =
  let m = Measure.size w in
  let e = link mod m in
  (match kind mod 3 with
  | 0 ->
    load.(e) <- load.(e) +. 1.;
    Load_tracker.add tracker e
  | 1 ->
    load.(e) <- load.(e) -. 1.;
    Load_tracker.remove tracker e
  | _ ->
    load.(e) <- load.(e) +. c;
    Load_tracker.add_scaled tracker e c);
  e

let agree w tracker load e =
  Float.abs (Measure.interference w load -. Load_tracker.interference tracker)
  <= tolerance
  && Float.abs
       (Measure.interference_at w load e
       -. Load_tracker.interference_at tracker e)
     <= tolerance

let run_ops w tracker load ops =
  List.for_all
    (fun op ->
      let e = apply w tracker load op in
      agree w tracker load e)
    ops

let arb_ops =
  QCheck.(
    list_of_size
      (Gen.int_range 1 40)
      (triple small_nat small_nat (float_range (-2.) 2.)))

let tracks ?(count = 500) name build =
  QCheck.Test.make ~count ~name
    QCheck.(pair small_nat arb_ops)
    (fun (pick, ops) ->
      let w = build pick in
      let tracker = Load_tracker.create w in
      let load = Array.make (Measure.size w) 0. in
      run_ops w tracker load ops)

(* ----------------------------------------------------------- properties *)

let prop_identity =
  tracks "tracker ≡ naive on identity measures" (fun pick ->
      Measure.identity (1 + (pick mod 16)))

let prop_complete =
  tracks "tracker ≡ naive on complete measures" (fun pick ->
      Measure.complete (1 + (pick mod 16)))

let prop_random_rows =
  tracks "tracker ≡ naive on random sparse measures" (fun pick ->
      random_rows_measure ~m:(2 + (pick mod 14)) (3000 + pick))

let prop_sinr =
  tracks "tracker ≡ naive on a SINR affectance matrix" (fun _ ->
      Lazy.force sinr_measure)

(* reset is equivalent to a fresh tracker: interference drops to the
   empty-system value and subsequent updates still agree with naive. *)
let prop_reset =
  QCheck.Test.make ~count:500 ~name:"reset returns to the empty system"
    QCheck.(triple small_nat arb_ops arb_ops)
    (fun (pick, before, after) ->
      let w = random_rows_measure ~m:(2 + (pick mod 14)) (4000 + pick) in
      let tracker = Load_tracker.create w in
      let load = Array.make (Measure.size w) 0. in
      List.iter (fun op -> ignore (apply w tracker load op)) before;
      Load_tracker.reset tracker;
      Array.fill load 0 (Array.length load) 0.;
      Load_tracker.interference tracker = 0.
      && run_ops w tracker load after)

(* of_load starts from an arbitrary vector and stays in agreement. *)
let prop_of_load =
  QCheck.Test.make ~count:500 ~name:"of_load ≡ naive from a non-zero start"
    QCheck.(
      triple small_nat
        (array_of_size (Gen.int_range 1 16) (float_range (-3.) 3.))
        arb_ops)
    (fun (pick, init, ops) ->
      let m = Array.length init in
      let w = random_rows_measure ~m (5000 + pick) in
      let tracker = Load_tracker.of_load w (Array.copy init) in
      let load = Array.copy init in
      agree w tracker load 0 && run_ops w tracker load ops)

let test_of_load_rejects_size () =
  let w = Measure.identity 3 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Load_tracker.of_load: load length differs from measure size")
    (fun () ->
      ignore (Load_tracker.of_load w [| 1. |]))

let test_load_vector_roundtrip () =
  let w = Measure.complete 4 in
  let tracker = Load_tracker.create w in
  Load_tracker.add tracker 1;
  Load_tracker.add tracker 1;
  Load_tracker.add_scaled tracker 3 0.5;
  Alcotest.(check (array (float 1e-12)))
    "load_vector" [| 0.; 2.; 0.; 0.5 |]
    (Load_tracker.load_vector tracker);
  Alcotest.(check (float 1e-12)) "load" 2. (Load_tracker.load tracker 1)

let () =
  Alcotest.run "load-tracker"
    [ ( "unit",
        [ Alcotest.test_case "of_load rejects size mismatch" `Quick
            test_of_load_rejects_size;
          Alcotest.test_case "load_vector round-trip" `Quick
            test_load_vector_roundtrip ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_identity;
            prop_complete;
            prop_random_rows;
            prop_sinr;
            prop_reset;
            prop_of_load ] ) ]
