(* Fault subsystem tests: plan parsing and validation, per-kind injector
   behaviour against a real channel, fault telemetry, the protocol
   overload guard, and faulted-run reproducibility. *)

module Rng = Dps_prelude.Rng
module Timeseries = Dps_prelude.Timeseries
module Graph = Dps_network.Graph
module Routing = Dps_network.Routing
module Topology = Dps_network.Topology
module Measure = Dps_interference.Measure
module Oracle = Dps_sim.Oracle
module Channel = Dps_sim.Channel
module Plan = Dps_faults.Plan
module Injector = Dps_faults.Injector
module Oneshot = Dps_static.Oneshot
module Stochastic = Dps_injection.Stochastic
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Stability = Dps_core.Stability
module Telemetry = Dps_telemetry.Telemetry
module Memory_sink = Dps_telemetry.Memory_sink
module Event = Dps_telemetry.Event
module Metrics = Dps_telemetry.Metrics

let rejects name f =
  try
    ignore (f ());
    Alcotest.fail (name ^ ": accepted")
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------- parsing *)

let test_parse_kinds () =
  (match Plan.parse_spec "jam:100-160:links=0+3" with
  | { Plan.kind = Plan.Jam; target = Plan.Links [ 0; 3 ];
      first_slot = 100; last_slot = 160 } -> ()
  | _ -> Alcotest.fail "jam spec");
  (match Plan.parse_spec "loss:50-120:p=0.3" with
  | { Plan.kind = Plan.Loss p; target = Plan.All;
      first_slot = 50; last_slot = 120 } ->
    Alcotest.(check (float 1e-9)) "p" 0.3 p
  | _ -> Alcotest.fail "loss spec");
  (match Plan.parse_spec "degrade:80-150:gamma=3" with
  | { Plan.kind = Plan.Degrade g; _ } ->
    Alcotest.(check (float 1e-9)) "gamma" 3. g
  | _ -> Alcotest.fail "degrade spec");
  (match Plan.parse_spec "outage:0-10" with
  | { Plan.kind = Plan.Outage; target = Plan.All;
      first_slot = 0; last_slot = 10 } -> ()
  | _ -> Alcotest.fail "outage spec");
  match Plan.parse_spec "jam:5-9:near=2~0.5" with
  | { Plan.target = Plan.Neighbourhood { center = 2; threshold }; _ } ->
    Alcotest.(check (float 1e-9)) "threshold" 0.5 threshold
  | _ -> Alcotest.fail "neighbourhood spec"

let test_parse_rejects () =
  List.iter
    (fun s -> rejects s (fun () -> Plan.parse_spec s))
    [ "jam:10-5";  (* inverted interval *)
      "loss:0-10:p=1.5";  (* probability out of range *)
      "loss:0-10";  (* loss without probability *)
      "degrade:0-10:gamma=0.5";  (* factor below 1 *)
      "degrade:0-10";  (* degrade without factor *)
      "jam:0-10:p=0.3";  (* field on the wrong kind *)
      "outage:0-10:gamma=2";  (* field on the wrong kind *)
      "banana:0-10";  (* unknown kind *)
      "jam:0-10:links=";  (* empty link set *)
      "jam";  (* no interval *)
      "jam:0-10:wat=1"  (* unknown field *) ]

let test_parse_plan_sorts () =
  let plan = Plan.parse "loss:30-40:p=0.5,jam:10-20" in
  match Plan.episodes plan with
  | [ { Plan.first_slot = 10; _ }; { Plan.first_slot = 30; _ } ] -> ()
  | _ -> Alcotest.fail "episodes not sorted by first slot"

let test_make_validates () =
  let ep = { Plan.kind = Plan.Jam; target = Plan.All;
             first_slot = 0; last_slot = 5 } in
  rejects "negative first slot" (fun () ->
      Plan.make [ { ep with Plan.first_slot = -1 } ]);
  rejects "inverted" (fun () -> Plan.make [ { ep with Plan.last_slot = -1 } ]);
  rejects "negative link id" (fun () ->
      Plan.make [ { ep with Plan.target = Plan.Links [ -2 ] } ]);
  rejects "empty link set" (fun () ->
      Plan.make [ { ep with Plan.target = Plan.Links [] } ]);
  rejects "threshold over 1" (fun () ->
      Plan.make
        [ { ep with
            Plan.target = Plan.Neighbourhood { center = 0; threshold = 1.5 } }
        ]);
  ignore (Plan.make [ ep ])

let test_plan_queries () =
  Alcotest.(check bool) "empty" true (Plan.is_empty Plan.empty);
  Alcotest.(check bool) "empty needs no rng" false (Plan.needs_rng Plan.empty);
  let jam = Plan.parse "jam:0-10" in
  Alcotest.(check bool) "jam non-empty" false (Plan.is_empty jam);
  Alcotest.(check bool) "jam needs no rng" false (Plan.needs_rng jam);
  Alcotest.(check bool) "jam needs no measure" false (Plan.needs_measure jam);
  Alcotest.(check bool) "loss needs rng" true
    (Plan.needs_rng (Plan.parse "loss:0-10:p=0.5"));
  Alcotest.(check bool) "degrade needs measure" true
    (Plan.needs_measure (Plan.parse "degrade:0-10:gamma=2"));
  Alcotest.(check bool) "neighbourhood needs measure" true
    (Plan.needs_measure (Plan.parse "jam:0-10:near=0~0.5"))

let with_temp_file f =
  let path = Filename.temp_file "dps_faults" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_load_file () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc
        "# a comment\n\njam:10-20:links=0+1\nloss:30-40:p=0.25\n";
      close_out oc;
      let plan = Plan.load path in
      Alcotest.(check int) "episodes" 2 (List.length (Plan.episodes plan)))

let test_load_reports_line () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "jam:10-20\nbanana:0-10\n";
      close_out oc;
      try
        ignore (Plan.load path);
        Alcotest.fail "malformed plan file accepted"
      with Invalid_argument msg ->
        Alcotest.(check bool) ("line number in: " ^ msg) true
          (let rec has i =
             i + 1 <= String.length msg && (msg.[i] = '2' || has (i + 1))
           in
           has 0))

(* ----------------------------------------------- injector vs a channel *)

(* A 2-link wireline channel with the given plan installed; every attempt
   would succeed were it not for the faults. *)
let jammed_channel ?rng ?measure plan =
  let injector = Injector.create ?rng ?measure ~m:2 plan in
  let channel =
    Channel.create ?measure ~faults:(Injector.hook injector)
      ~oracle:Oracle.Wireline ~m:2 ()
  in
  (channel, injector)

let test_outage_interval () =
  let channel, injector =
    jammed_channel (Plan.parse "outage:1-2:links=0")
  in
  Alcotest.(check (list int)) "slot 0: before episode" [ 0; 1 ]
    (List.sort compare (Channel.step channel [ 0; 1 ]));
  Alcotest.(check (list int)) "slot 1: link 0 out" [ 1 ]
    (Channel.step channel [ 0; 1 ]);
  Alcotest.(check int) "one episode active" 1
    (Injector.active_episodes injector);
  Alcotest.(check (list int)) "slot 2: still out" [ 1 ]
    (Channel.step channel [ 0; 1 ]);
  Alcotest.(check (list int)) "slot 3: episode over" [ 0; 1 ]
    (List.sort compare (Channel.step channel [ 0; 1 ]));
  Alcotest.(check int) "no episode active" 0
    (Injector.active_episodes injector);
  Alcotest.(check int) "outage suppressions" 2
    (Injector.suppressed_of injector "outage");
  Alcotest.(check int) "total" 2 (Injector.suppressed injector)

let test_jam_all_links () =
  let channel, injector = jammed_channel (Plan.parse "jam:0-0") in
  Alcotest.(check (list int)) "jammed slot" [] (Channel.step channel [ 0; 1 ]);
  Alcotest.(check (list int)) "next slot clean" [ 0; 1 ]
    (List.sort compare (Channel.step channel [ 0; 1 ]));
  Alcotest.(check int) "jam suppressions" 2
    (Injector.suppressed_of injector "jam")

let test_loss_certain_and_never () =
  let channel, injector =
    jammed_channel
      ~rng:(Rng.create ~seed:5 ())
      (Plan.parse "loss:0-9:p=1")
  in
  for _ = 0 to 9 do
    Alcotest.(check (list int)) "p=1 drops all" [] (Channel.step channel [ 0 ])
  done;
  Alcotest.(check int) "loss suppressions" 10
    (Injector.suppressed_of injector "loss");
  let channel, injector =
    jammed_channel
      ~rng:(Rng.create ~seed:5 ())
      (Plan.parse "loss:0-9:p=0")
  in
  for _ = 0 to 9 do
    Alcotest.(check (list int)) "p=0 drops none" [ 0 ]
      (Channel.step channel [ 0 ])
  done;
  Alcotest.(check int) "no loss suppressions" 0
    (Injector.suppressed injector)

let test_loss_needs_rng () =
  rejects "loss without rng" (fun () ->
      Injector.create ~m:2 (Plan.parse "loss:0-9:p=0.5"))

let test_degrade_with_measure () =
  (* Complete measure on 2 links: each transmission sees interference 1
     from the other, so gamma=1 kills concurrent pairs but spares solo
     transmissions. *)
  let channel, injector =
    jammed_channel ~measure:(Measure.complete 2)
      (Plan.parse "degrade:0-9:gamma=1")
  in
  Alcotest.(check (list int)) "concurrent pair degraded" []
    (Channel.step channel [ 0; 1 ]);
  Alcotest.(check (list int)) "solo transmission survives" [ 0 ]
    (Channel.step channel [ 0 ]);
  Alcotest.(check int) "degrade suppressions" 2
    (Injector.suppressed_of injector "degrade")

let test_degrade_without_measure_noop () =
  let channel, injector = jammed_channel (Plan.parse "degrade:0-9:gamma=99") in
  Alcotest.(check (list int)) "no measure, no degradation" [ 0; 1 ]
    (List.sort compare (Channel.step channel [ 0; 1 ]));
  Alcotest.(check int) "nothing suppressed" 0 (Injector.suppressed injector)

let test_neighbourhood_target () =
  rejects "neighbourhood without measure" (fun () ->
      Injector.create ~m:2 (Plan.parse "jam:0-9:near=0~0.5"));
  (* Identity measure: the neighbourhood of link 0 is link 0 alone. *)
  let channel, injector =
    jammed_channel ~measure:(Measure.identity 2)
      (Plan.parse "jam:0-9:near=0~0.5")
  in
  Alcotest.(check (list int)) "only the center jammed" [ 1 ]
    (Channel.step channel [ 0; 1 ]);
  Alcotest.(check int) "one suppression" 1 (Injector.suppressed injector)

let test_target_out_of_range () =
  rejects "link id out of range" (fun () ->
      Injector.create ~m:2 (Plan.parse "jam:0-9:links=5"))

(* ----------------------------------------------------- fault telemetry *)

let test_episode_events () =
  let recorder = Memory_sink.create () in
  let t = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
  let injector =
    Injector.create ~telemetry:t ~frame_length:2 ~m:2
      (Plan.parse "jam:1-2:links=0")
  in
  let channel =
    Channel.create ~faults:(Injector.hook injector) ~oracle:Oracle.Wireline
      ~m:2 ()
  in
  for _ = 0 to 4 do
    ignore (Channel.step channel [ 0 ])
  done;
  Telemetry.emit_metrics t ~frame:2;
  match Memory_sink.events recorder with
  | [ Event.Point { name = "fault.episode.start"; frame = 0; slot = 1; attrs };
      Event.Point
        { name = "fault.episode.end"; frame = 1; slot = 3; attrs = attrs' } ]
    ->
    Alcotest.(check bool) "start attrs" true
      (attrs
      = [ ("kind", Event.Str "jam"); ("links", Event.Int 1);
          ("param", Event.Float 0.); ("last_slot", Event.Int 2) ]);
    Alcotest.(check bool) "end attrs" true
      (attrs'
      = [ ("kind", Event.Str "jam"); ("links", Event.Int 1);
          ("param", Event.Float 0.); ("suppressed", Event.Int 2) ]);
    let rows = List.concat_map snd (Memory_sink.snapshots recorder) in
    Alcotest.(check bool) "fault.suppressed{kind=jam} row" true
      (List.exists
         (fun r ->
           r.Metrics.name = "fault.suppressed"
           && r.Metrics.labels = [ ("kind", "jam") ]
           && r.Metrics.value = 2.)
         rows)
  | events ->
    Alcotest.fail
      (Printf.sprintf "unexpected event stream (%d events)"
         (List.length events))

(* -------------------------------------------------- the overload guard *)

let test_guard_constructor_validates () =
  rejects "low >= high" (fun () -> Protocol.guard ~high:10 ~low:10 ());
  rejects "negative low" (fun () -> Protocol.guard ~high:10 ~low:(-1) ());
  rejects "non-positive high" (fun () -> Protocol.guard ~high:0 ~low:0 ());
  ignore (Protocol.guard ~high:10 ~low:0 ())

(* Wireline line network under a jam episode spanning whole frames:
   failures pile up while the jam lasts, then the (cleanup_prob = 1)
   clean-up drains them quickly once it lifts. *)
let faulted_run ?guard ?(frames = 90) ?(jam_frames = (5, 16)) ?(seed = 23) ()
    =
  let g = Topology.line ~nodes:5 ~spacing:1. in
  let m = Graph.link_count g in
  let measure = Measure.identity m in
  let routing = Routing.make g in
  let path src dst = Option.get (Routing.path routing ~src ~dst) in
  let config =
    Protocol.configure ~epsilon:0.5 ~cleanup_prob:1. ~algorithm:Oneshot.algorithm
      ~measure ~lambda:0.3 ~max_hops:4 ()
  in
  let t = config.Protocol.frame in
  let a, b = jam_frames in
  let plan =
    Plan.make
      [ { Plan.kind = Plan.Jam; target = Plan.All;
          first_slot = a * t; last_slot = ((b + 1) * t) - 1 } ]
  in
  let source =
    Driver.Stochastic
      (Stochastic.make [ [ (path 0 4, 0.01) ]; [ (path 4 0, 0.01) ] ])
  in
  let rng = Rng.create ~seed () in
  Driver.run_faulted ?guard ~config ~oracle:Oracle.Wireline ~source ~plan
    ~frames ~rng ()

let last_point series =
  int_of_float (Timeseries.get series (Timeseries.length series - 1))

let test_unguarded_jam_destabilises_then_recovers () =
  let report, injector = faulted_run () in
  Alcotest.(check bool) "jam suppressed transmissions" true
    (Injector.suppressed_of injector "jam" > 0);
  Alcotest.(check bool) "queue spiked" true (report.Protocol.max_queue >= 10);
  Alcotest.(check int) "no guard, nothing shed" 0 report.Protocol.shed;
  (* the spike drains once the jam lifts: verdict is Recovered, and the
     aggregate predicate treats it as stable *)
  let v = Stability.assess report.Protocol.in_system in
  Alcotest.(check string) "verdict" "recovered" (Stability.to_string v);
  Alcotest.(check bool) "recovered is stable" true (Stability.is_stable v)

let test_guard_reject_sheds_and_recovers () =
  let guard =
    Protocol.guard ~policy:Protocol.Reject_admission ~high:8 ~low:2 ()
  in
  let report, _ = faulted_run ~guard () in
  Alcotest.(check bool) "shed some" true (report.Protocol.shed > 0);
  Alcotest.(check bool) "overloaded frames" true
    (report.Protocol.overload_frames > 0);
  (* rejected packets never count as injected *)
  Alcotest.(check int) "conservation (reject)"
    report.Protocol.injected
    (report.Protocol.delivered + last_point report.Protocol.in_system);
  match report.Protocol.recoveries with
  | { Protocol.onset_frame; clear_frame } :: _ ->
    Alcotest.(check bool) "drain takes at least a frame" true
      (clear_frame > onset_frame)
  | [] -> Alcotest.fail "no recovery recorded"

let test_guard_drop_newest_conservation () =
  let guard =
    Protocol.guard ~policy:Protocol.Drop_newest ~high:8 ~low:2 ()
  in
  let report, _ = faulted_run ~guard () in
  Alcotest.(check bool) "shed some" true (report.Protocol.shed > 0);
  (* dropped packets count as injected and as shed *)
  Alcotest.(check int) "conservation (drop-newest)"
    report.Protocol.injected
    (report.Protocol.delivered
    + last_point report.Protocol.in_system
    + report.Protocol.shed)

let test_guard_bounds_queue () =
  (* Same jam, no drain help (cleanup left at 1/m) and a much longer
     episode: unguarded the queue grows with the episode length, guarded
     it stays pinned near the high watermark. *)
  let long = (5, 34) in
  let unguarded, _ = faulted_run ~frames:40 ~jam_frames:long () in
  let guard = Protocol.guard ~high:8 ~low:2 () in
  let guarded, _ = faulted_run ~guard ~frames:40 ~jam_frames:long () in
  Alcotest.(check bool)
    (Printf.sprintf "guarded max %d < unguarded max %d"
       guarded.Protocol.max_queue unguarded.Protocol.max_queue)
    true
    (guarded.Protocol.max_queue < unguarded.Protocol.max_queue)

(* ------------------------------------------------------ reproducibility *)

let series_to_list s =
  List.init (Timeseries.length s) (Timeseries.get s)

let test_faulted_run_reproducible () =
  (* A loss plan so the fault RNG stream is actually exercised. *)
  let run () =
    let g = Topology.line ~nodes:5 ~spacing:1. in
    let measure = Measure.identity (Graph.link_count g) in
    let routing = Routing.make g in
    let path src dst = Option.get (Routing.path routing ~src ~dst) in
    let config =
      Protocol.configure ~epsilon:0.5 ~algorithm:Oneshot.algorithm ~measure
        ~lambda:0.3 ~max_hops:4 ()
    in
    let source =
      Driver.Stochastic
        (Stochastic.make [ [ (path 0 4, 0.1) ]; [ (path 4 0, 0.1) ] ])
    in
    let recorder = Memory_sink.create () in
    let t = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let report, _ =
      Driver.run_faulted_traced ~telemetry:t ~metrics_every:5 ~config
        ~oracle:Oracle.Wireline ~source
        ~plan:(Plan.parse "loss:20-200:p=0.4,jam:300-340")
        ~frames:20
        ~rng:(Rng.create ~seed:77 ())
        ()
    in
    Telemetry.close t;
    (report, Memory_sink.event_lines recorder, Memory_sink.snapshots recorder)
  in
  let r1, lines1, snaps1 = run () in
  let r2, lines2, snaps2 = run () in
  Alcotest.(check int) "injected" r1.Protocol.injected r2.Protocol.injected;
  Alcotest.(check int) "delivered" r1.Protocol.delivered r2.Protocol.delivered;
  Alcotest.(check (list (float 0.))) "in_system series"
    (series_to_list r1.Protocol.in_system)
    (series_to_list r2.Protocol.in_system);
  Alcotest.(check (list string)) "identical JSONL events" lines1 lines2;
  Alcotest.(check bool) "identical metric snapshots" true (snaps1 = snaps2)

let test_empty_plan_matches_unfaulted () =
  let g = Topology.line ~nodes:5 ~spacing:1. in
  let measure = Measure.identity (Graph.link_count g) in
  let routing = Routing.make g in
  let path src dst = Option.get (Routing.path routing ~src ~dst) in
  let config =
    Protocol.configure ~epsilon:0.5 ~algorithm:Oneshot.algorithm ~measure
      ~lambda:0.3 ~max_hops:4 ()
  in
  let source () =
    Driver.Stochastic
      (Stochastic.make [ [ (path 0 4, 0.1) ]; [ (path 4 0, 0.1) ] ])
  in
  let plain =
    Driver.run ~config ~oracle:Oracle.Wireline ~source:(source ()) ~frames:25
      ~rng:(Rng.create ~seed:9 ())
  in
  let faulted, injector =
    Driver.run_faulted ~config ~oracle:Oracle.Wireline ~source:(source ())
      ~plan:Plan.empty ~frames:25
      ~rng:(Rng.create ~seed:9 ())
      ()
  in
  Alcotest.(check int) "nothing suppressed" 0 (Injector.suppressed injector);
  Alcotest.(check int) "injected" plain.Protocol.injected
    faulted.Protocol.injected;
  Alcotest.(check int) "delivered" plain.Protocol.delivered
    faulted.Protocol.delivered;
  Alcotest.(check int) "failed_events" plain.Protocol.failed_events
    faulted.Protocol.failed_events;
  Alcotest.(check (list (float 0.))) "in_system series"
    (series_to_list plain.Protocol.in_system)
    (series_to_list faulted.Protocol.in_system)

(* ------------------------------------------------------------------ run *)

let () =
  Alcotest.run "faults"
    [ ( "plan",
        [ Alcotest.test_case "parse kinds" `Quick test_parse_kinds;
          Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
          Alcotest.test_case "parse sorts" `Quick test_parse_plan_sorts;
          Alcotest.test_case "make validates" `Quick test_make_validates;
          Alcotest.test_case "queries" `Quick test_plan_queries;
          Alcotest.test_case "load file" `Quick test_load_file;
          Alcotest.test_case "load reports line" `Quick test_load_reports_line
        ] );
      ( "injector",
        [ Alcotest.test_case "outage interval" `Quick test_outage_interval;
          Alcotest.test_case "jam all links" `Quick test_jam_all_links;
          Alcotest.test_case "loss p=1 / p=0" `Quick
            test_loss_certain_and_never;
          Alcotest.test_case "loss needs rng" `Quick test_loss_needs_rng;
          Alcotest.test_case "degrade with measure" `Quick
            test_degrade_with_measure;
          Alcotest.test_case "degrade without measure" `Quick
            test_degrade_without_measure_noop;
          Alcotest.test_case "neighbourhood target" `Quick
            test_neighbourhood_target;
          Alcotest.test_case "target out of range" `Quick
            test_target_out_of_range ] );
      ( "telemetry",
        [ Alcotest.test_case "episode events" `Quick test_episode_events ] );
      ( "guard",
        [ Alcotest.test_case "constructor validates" `Quick
            test_guard_constructor_validates;
          Alcotest.test_case "unguarded jam recovers" `Quick
            test_unguarded_jam_destabilises_then_recovers;
          Alcotest.test_case "reject sheds and recovers" `Quick
            test_guard_reject_sheds_and_recovers;
          Alcotest.test_case "drop-newest conservation" `Quick
            test_guard_drop_newest_conservation;
          Alcotest.test_case "guard bounds queue" `Quick test_guard_bounds_queue
        ] );
      ( "reproducibility",
        [ Alcotest.test_case "faulted run reproducible" `Quick
            test_faulted_run_reproducible;
          Alcotest.test_case "empty plan = unfaulted" `Quick
            test_empty_plan_matches_unfaulted ] ) ]
