(* Allocation pins for the hot loop (ISSUE P5 tentpole): the steady-state
   slot loop must not allocate minor words.

   Measurement notes. [Gc.minor_words ()] itself returns a boxed float, so
   the first sample's box is counted by the second sample; [overhead]
   calibrates that constant and every strict-zero check compares against
   it exactly — these are counters, not timers, so there is no noise and
   the checks are equalities, not tolerances.

   The protocol-level pin uses a slope trick: two identical empty-steady-
   state protocols differing ONLY in frame length T run the same number
   of frames. Per-frame constants (the frame-stats boxes) cancel in the
   difference, so delta(T2) - delta(T1) = frames * (T2 - T1) * per_slot
   — requiring equality proves per_slot = 0 words exactly. Warmups run
   each Timeseries past its next capacity doubling so no growth lands in
   the measured window. *)

module Rng = Dps_prelude.Rng
module Intvec = Dps_prelude.Intvec
module M = Dps_interference.Measure
module Oracle = Dps_sim.Oracle
module Channel = Dps_sim.Channel
module Protocol = Dps_core.Protocol

let overhead =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let measure f =
  let a = Gc.minor_words () in
  f ();
  let b = Gc.minor_words () in
  b -. a -. overhead

let check_zero name f = Alcotest.(check (float 0.)) name 0. (measure f)

(* ------------------------------------------------------- channel slots *)

let test_idle_slots () =
  let channel = Channel.create ~oracle:Oracle.Wireline ~m:8 () in
  Channel.idle channel ~slots:100;
  check_zero "10k idle wireline slots" (fun () ->
      Channel.idle channel ~slots:10_000)

let busy_loop channel attempts =
  for _ = 1 to 10_000 do
    ignore (Channel.step_vec channel attempts)
  done

let test_busy_slots_wireline () =
  let channel = Channel.create ~oracle:Oracle.Wireline ~m:8 () in
  let attempts = Intvec.of_list [ 3; 1; 5 ] in
  busy_loop channel attempts;
  check_zero "10k busy wireline slots" (fun () -> busy_loop channel attempts)

let test_busy_slots_mac () =
  let channel = Channel.create ~oracle:Oracle.Mac ~m:4 () in
  let solo = Intvec.of_list [ 2 ] in
  let pair = Intvec.of_list [ 0; 1 ] in
  busy_loop channel solo;
  busy_loop channel pair;
  check_zero "10k solo mac slots" (fun () -> busy_loop channel solo);
  check_zero "10k colliding mac slots" (fun () -> busy_loop channel pair)

(* ------------------------------------------------- protocol slot loop *)

(* Empty steady state: configured protocol, no arrivals — every slot runs
   the frame machinery (phase 1, clean-up offers, idle channel, frame
   stats) with nothing in flight. This is the regime the tentpole pins at
   strictly zero words per slot; busy regimes add only per-frame request
   batches, which the slope construction cancels anyway. *)
let frame_delta ?measure:measure_w ~oracle ~algorithm ~lambda ~m ~frame
    ~frames () =
  let measure_w = Option.value ~default:(M.identity m) measure_w in
  let config =
    Protocol.configure_with_frame ~algorithm ~measure:measure_w ~lambda
      ~max_hops:4 ~frame ()
  in
  let channel = Channel.create ~oracle ~m () in
  let protocol = Protocol.create config ~channel in
  let rng = Rng.create ~seed:99 () in
  let inject_slot _ = [] in
  (* Warmup past the Timeseries doubling at len 64 (initial capacity):
     70 warmup + 50 measured frames stay below the next boundary, 128. *)
  for _ = 1 to 70 do
    Protocol.run_frame protocol rng ~inject_slot
  done;
  measure (fun () ->
      for _ = 1 to frames do
        Protocol.run_frame protocol rng ~inject_slot
      done)

let slope_pin ?measure:measure_w ?(m = 8) name ~oracle ~algorithm ~lambda ~t1
    =
  let frames = 50 in
  let d1 =
    frame_delta ?measure:measure_w ~oracle ~algorithm ~lambda ~m ~frame:t1
      ~frames ()
  in
  let d2 =
    frame_delta ?measure:measure_w ~oracle ~algorithm ~lambda ~m
      ~frame:(t1 + 512) ~frames ()
  in
  (* 512 extra slots per frame for 50 frames contributed nothing. *)
  Alcotest.(check (float 0.)) (name ^ ": zero words per slot") 0. (d2 -. d1);
  (* And the per-frame constant itself is pinned: at most 16 words per
     frame for the stats boxes (currently ~4; headroom for compiler
     variation, not for new per-frame work). *)
  if d1 > float_of_int (16 * frames) then
    Alcotest.failf "%s: per-frame budget blown: %.0f words over %d frames"
      name d1 frames

let test_run_frame_wireline () =
  slope_pin "wireline/oneshot" ~oracle:Oracle.Wireline
    ~algorithm:Dps_static.Oneshot.algorithm ~lambda:0.1 ~t1:64

(* Decay's duration bound has a Θ(log² n) stage-2 floor that no 64-slot
   frame fits; λ = 0.01 and a 576-slot base frame keep both lengths of
   the slope construction feasible. *)
let test_run_frame_decay () =
  slope_pin "mac/decay" ~oracle:Oracle.Mac
    ~algorithm:(Dps_mac.Decay.make ~delta:0.3 ()) ~lambda:0.01 ~t1:576

(* ------------------------------------------------- sparse hot path *)

(* The ext-backed measure (Tiled.as_measure) must obey the same budget
   as the dense pins above: the protocol cannot tell the backends apart,
   so neither may the allocator. Same slope construction, on a small
   link cloud with the real SINR oracle. *)
let sparse_fixture () =
  let rng = Rng.create ~seed:5 () in
  let g =
    Dps_network.Topology.link_cloud rng ~links:8 ~side:12. ~length:1.
  in
  let phys =
    Dps_sinr.Physics.make
      (Dps_sinr.Params.make ~alpha:4. ~noise:1e-9 ())
      (Dps_sinr.Power.linear 2.) g
  in
  (Dps_sinr.Sinr_measure.linear_power_tiled ~epsilon:0.1 phys, phys)

let test_run_frame_sparse () =
  let tiled, phys = sparse_fixture () in
  let measure = Dps_interference.Tiled.as_measure tiled in
  M.ensure_transpose measure;
  slope_pin "sinr/oneshot sparse" ~measure ~oracle:(Oracle.Sinr phys)
    ~algorithm:Dps_static.Oneshot.algorithm ~lambda:0.1 ~t1:64

(* Steady-state tracker traffic: adds/removes on already-touched links
   plus the stale-rescan interference query. Column iteration boxes the
   weight at each callback on BOTH backends (the closure is opaque at
   the call site), so the pin here is relative: the ext dispatch may
   not allocate a single word more per round than the dense CSC walk
   over the very same matrix — the closure record costs indirection,
   never allocation. *)
let test_sparse_tracker_ops () =
  let module Load_tracker = Dps_interference.Load_tracker in
  let module Tiled = Dps_interference.Tiled in
  let tiled, _ = sparse_fixture () in
  let rounds w =
    M.ensure_transpose w;
    let tr = Load_tracker.create w in
    let ops () =
      for _ = 1 to 10_000 do
        Load_tracker.add tr 3;
        Load_tracker.add tr 5;
        ignore (Load_tracker.interference tr);
        Load_tracker.remove tr 3;
        Load_tracker.remove tr 5;
        ignore (Load_tracker.interference tr)
      done
    in
    ops ();
    measure ops
  in
  let dense = rounds (Tiled.to_measure tiled) in
  let sparse = rounds (Tiled.as_measure tiled) in
  if sparse > dense then
    Alcotest.failf
      "ext backend allocates more than dense on identical traffic: %.0f vs \
       %.0f words per 10k rounds"
      sparse dense

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "alloc"
    [ ( "channel",
        [ quick "idle slots allocate nothing" test_idle_slots;
          quick "busy wireline slots allocate nothing" test_busy_slots_wireline;
          quick "busy mac slots allocate nothing" test_busy_slots_mac ] );
      ( "protocol",
        [ quick "run_frame slope pin (wireline/oneshot)" test_run_frame_wireline;
          quick "run_frame slope pin (mac/decay)" test_run_frame_decay ] );
      ( "sparse",
        [ quick "run_frame slope pin (sinr/oneshot, ext backend)"
            test_run_frame_sparse;
          quick "tracker ops on the ext backend allocate nothing"
            test_sparse_tracker_ops ] ) ]
