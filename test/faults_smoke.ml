(* @faults-smoke — one short faulted scenario per fault kind, each against
   the mac, wireline and sinr-linear oracle families at toy sizes. Run by
   `dune runtest`; the point is that every fault kind composes with every
   oracle end to end (plan parsing, injector, channel hook, driver), not
   the printed numbers. *)

module Rng = Dps_prelude.Rng
module Graph = Dps_network.Graph
module Routing = Dps_network.Routing
module Path = Dps_network.Path
module Topology = Dps_network.Topology
module Measure = Dps_interference.Measure
module Params = Dps_sinr.Params
module Power = Dps_sinr.Power
module Physics = Dps_sinr.Physics
module Sinr_measure = Dps_sinr.Sinr_measure
module Oracle = Dps_sim.Oracle
module Stochastic = Dps_injection.Stochastic
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Plan = Dps_faults.Plan
module Injector = Dps_faults.Injector

type case = {
  model : string;
  measure : Measure.t;
  oracle : Oracle.t;
  algorithm : Dps_static.Algorithm.t;
  paths : Path.t list;
  rate : float;
}

let specs =
  [ "outage:0-400";
    "jam:0-400";
    "loss:0-400:p=0.5";
    "degrade:0-400:gamma=4" ]

let path_between g ~src ~dst =
  match Routing.path (Routing.make g) ~src ~dst with
  | Some p -> p
  | None -> failwith "faults_smoke: no route"

let mac () =
  let g = Topology.mac_channel ~stations:4 in
  let m = Graph.link_count g in
  { model = "mac";
    measure = Measure.complete m;
    oracle = Oracle.Mac;
    algorithm = Dps_mac.Decay.make ~delta:0.3 ();
    paths = List.init m (fun i -> Path.of_links g [ i ]);
    rate = 0.1 }

let wireline () =
  let g = Topology.line ~nodes:5 ~spacing:10. in
  { model = "wireline";
    measure = Measure.identity (Graph.link_count g);
    oracle = Oracle.Wireline;
    algorithm = Dps_static.Oneshot.algorithm;
    paths = [ path_between g ~src:0 ~dst:4 ];
    rate = 0.2 }

let sinr_linear () =
  let g = Topology.line ~nodes:4 ~spacing:10. in
  let phys = Physics.make (Params.make ~noise:1e-9 ()) (Power.linear 2.) g in
  { model = "sinr-linear";
    measure = Sinr_measure.linear_power phys;
    oracle = Oracle.Sinr phys;
    algorithm = Dps_static.Delay_select.make ~c:4. ();
    paths = [ path_between g ~src:0 ~dst:3 ];
    rate = 0.02 }

let frames = 8

let run_case case ?guard spec =
  let plan = Plan.parse spec in
  let config =
    Protocol.configure ~algorithm:case.algorithm ~measure:case.measure
      ~lambda:case.rate ~max_hops:8 ()
  in
  let source =
    Driver.Stochastic
      (Stochastic.calibrate
         (Stochastic.make (List.map (fun p -> [ (p, 0.001) ]) case.paths))
         case.measure ~target:case.rate)
  in
  let rng = Rng.create ~seed:11 () in
  let report, injector =
    Driver.run_faulted ?guard ~config ~oracle:case.oracle ~source ~plan
      ~frames ~rng ()
  in
  if report.Protocol.frames <> frames then
    failwith
      (Printf.sprintf "faults_smoke: %s %s ran %d frames, wanted %d"
         case.model spec report.Protocol.frames frames);
  if report.Protocol.delivered > report.Protocol.injected then
    failwith
      (Printf.sprintf "faults_smoke: %s %s delivered more than injected"
         case.model spec);
  (report, injector)

let () =
  List.iter
    (fun case ->
      List.iter
        (fun spec ->
          let report, injector = run_case case spec in
          Printf.printf
            "faults-smoke %-12s %-20s injected=%d delivered=%d suppressed=%d\n"
            case.model spec report.Protocol.injected
            report.Protocol.delivered
            (Injector.suppressed injector))
        specs)
    [ mac (); wireline (); sinr_linear () ];
  (* And once through the overload guard, so the guarded faulted path is
     exercised here too. *)
  let guard = Protocol.guard ~high:20 ~low:2 () in
  let report, _ = run_case (wireline ()) ~guard "jam:0-400" in
  Printf.printf "faults-smoke %-12s %-20s shed=%d overload_frames=%d\n"
    "wireline" "jam+guard" report.Protocol.shed
    report.Protocol.overload_frames
