(* Tests for lib/trace: the JSONL parser, the line schema, packet
   lifecycle reconstruction, the analyzers, and — the load-bearing ones —
   the witness/live parity checks: a verdict recomputed from the trace
   file alone must agree with the verdict the live run reported. *)

module Rng = Dps_prelude.Rng
module Graph = Dps_network.Graph
module Routing = Dps_network.Routing
module Topology = Dps_network.Topology
module Measure = Dps_interference.Measure
module Oracle = Dps_sim.Oracle
module Oneshot = Dps_static.Oneshot
module Stochastic = Dps_injection.Stochastic
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Stability = Dps_core.Stability
module Sink = Dps_telemetry.Sink
module Telemetry = Dps_telemetry.Telemetry
module Json = Dps_trace.Json
module Line = Dps_trace.Line
module Reader = Dps_trace.Reader
module Lifecycle = Dps_trace.Lifecycle
module Analyze = Dps_trace.Analyze
module Witness = Dps_trace.Witness

(* ------------------------------------------------------------- parser *)

let test_json_parse () =
  match Json.parse {|{"a":1,"b":[true,null,"x\\n"],"c":-2.5}|} with
  | Json.Obj kvs ->
    Alcotest.(check (list string)) "key order preserved" [ "a"; "b"; "c" ]
      (List.map fst kvs);
    Alcotest.(check int) "int field" 1 (Json.to_int (List.assoc "a" kvs));
    Alcotest.(check (float 1e-9)) "float field" (-2.5)
      (Json.to_float (List.assoc "c" kvs))
  | _ -> Alcotest.fail "not an object"

let test_json_rejects () =
  let bad s =
    match Json.parse s with
    | exception Json.Error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "{\"a\":1e}"

let test_line_schema () =
  let ok s =
    match Line.parse s with
    | Ok l -> l
    | Error msg -> Alcotest.failf "rejected %S: %s" s msg
  in
  let bad s =
    match Line.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  let l =
    ok
      {|{"v":2,"type":"event","name":"packet.inject","frame":0,"slot":3,"attrs":{"id":0,"link":1,"d":2,"delay":0}}|}
  in
  Alcotest.(check int) "version" 2 l.Line.version;
  (match l.Line.body with
  | Line.Event { attrs; _ } ->
    Alcotest.(check (option int)) "id attr" (Some 0)
      (Line.int_attr "id" attrs)
  | _ -> Alcotest.fail "not an event line");
  (* v must come first, key order is part of the schema *)
  bad {|{"type":"event","v":2,"name":"p","frame":0,"slot":3,"attrs":{}}|};
  (* unknown type *)
  bad {|{"v":2,"type":"mystery","name":"p","frame":0,"slot":3,"attrs":{}}|};
  (* span interval must be ordered *)
  bad
    {|{"v":2,"type":"span","name":"s","frame":0,"slot_start":9,"slot_end":3,"attrs":{}}|};
  (* version outside the supported range *)
  bad {|{"v":99,"type":"event","name":"p","frame":0,"slot":3,"attrs":{}}|}

(* --------------------------------------------------- traced run fixture *)

let with_temp_file f =
  let path = Filename.temp_file "dps_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* The same 5-node wireline line as test_telemetry's round-trip, with
   packet tracing on: small enough to run in a test, busy enough to give
   every analyzer real data. Returns the live report and the
   reconstructed run. *)
let traced_run ?(packet_trace = 1) ?(frames = 30) path =
  let g = Topology.line ~nodes:5 ~spacing:1. in
  let m = Graph.link_count g in
  let routing = Routing.make g in
  let p src dst = Option.get (Routing.path routing ~src ~dst) in
  let cfg =
    Protocol.configure ~epsilon:0.5 ~algorithm:Oneshot.algorithm
      ~measure:(Measure.identity m) ~lambda:0.3 ~max_hops:4 ()
  in
  let inj = Stochastic.make [ [ (p 0 4, 0.1) ]; [ (p 4 0, 0.1) ] ] in
  let oc = open_out path in
  let t = Telemetry.make ~sinks:[ Sink.jsonl oc ] () in
  let report =
    Fun.protect
      ~finally:(fun () -> Telemetry.close t)
      (fun () ->
        Driver.run_traced ~packet_trace ~telemetry:t ~metrics_every:0
          ~config:cfg ~oracle:Oracle.Wireline
          ~source:(Driver.Stochastic inj) ~frames
          ~rng:(Rng.create ~seed:23 ()) ())
  in
  let run =
    Reader.with_input path (fun ic -> Lifecycle.of_lines (Reader.lines_exn ic))
  in
  (report, run)

let test_reconstruction_matches_report () =
  with_temp_file (fun path ->
      let report, run = traced_run path in
      let s = Analyze.summary run in
      (* k = 1: every packet is traced, so the trace-side counters must
         equal the live report exactly. *)
      Alcotest.(check int) "injected" report.Protocol.injected
        s.Analyze.s_injected;
      Alcotest.(check int) "delivered" report.Protocol.delivered
        s.Analyze.s_delivered;
      Alcotest.(check int) "frames" 30 s.Analyze.s_frames;
      Alcotest.(check bool) "frame length recovered" true
        (s.Analyze.s_frame_length <> None))

let test_sampling_is_deterministic_mod_k () =
  with_temp_file (fun path ->
      let report, run = traced_run ~packet_trace:3 path in
      let ids = List.map (fun p -> p.Lifecycle.id) run.Lifecycle.packets in
      Alcotest.(check bool) "some packets sampled" true (ids <> []);
      List.iter
        (fun id ->
          Alcotest.(check int) (Printf.sprintf "id %d mod 3" id) 0 (id mod 3))
        ids;
      (* Head-based: a sampled packet carries its whole lifecycle, so a
         sampled delivered packet has one hop event per path edge. *)
      List.iter
        (fun (p : Lifecycle.packet) ->
          match (p.Lifecycle.inject, p.Lifecycle.deliver) with
          | Some inj, Some del when not del.Lifecycle.del_failed ->
            Alcotest.(check int)
              (Printf.sprintf "packet %d hop count" p.Lifecycle.id)
              inj.Lifecycle.inj_d
              (List.length
                 (List.filter
                    (fun (h : Lifecycle.hop) -> h.Lifecycle.hop_ok)
                    p.Lifecycle.hops))
          | _ -> ())
        run.Lifecycle.packets;
      (* Sampling only filters events; the run itself is untouched. *)
      let full_report, _ =
        with_temp_file (fun p2 -> traced_run ~packet_trace:1 p2)
      in
      Alcotest.(check int) "same delivered count as k=1"
        full_report.Protocol.delivered report.Protocol.delivered)

let test_decomposition_accounts_all_slots () =
  with_temp_file (fun path ->
      let _, run = traced_run path in
      let ds = Analyze.decompositions run in
      Alcotest.(check bool) "some packets decomposed" true (ds <> []);
      List.iter
        (fun (d : Analyze.decomposition) ->
          Alcotest.(check int)
            (Printf.sprintf "packet %d: queue+phase1+cleanup = latency"
               d.Analyze.dc_id)
            d.Analyze.dc_latency
            (d.Analyze.dc_queue + d.Analyze.dc_phase1 + d.Analyze.dc_cleanup))
        ds)

(* ----------------------------------------------------- torn-tail reader *)

(* The Truncated message prefix is part of the crash-recovery contract:
   the dps_serve restore path matches on the classification and the
   message reaches operators verbatim, so it is pinned here — changing
   it must be a visible, deliberate act. *)
let truncated_prefix = "truncated final line (crash mid-write?): "

let good_line =
  {|{"v":2,"type":"event","name":"packet.inject","frame":0,"slot":3,"attrs":{"id":0,"link":1,"d":2,"delay":0}}|}

let with_file_contents contents f =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let classify_all path =
  Reader.with_input path (fun ic ->
      List.rev
        (Reader.fold_classified ic ~init:[] ~f:(fun acc ~lineno:_ r ->
             (match r with
             | Ok _ -> `Ok
             | Error (Reader.Malformed _) -> `Malformed
             | Error (Reader.Truncated msg) -> `Truncated msg)
             :: acc)))

let test_truncated_final_line () =
  (* A half-written final line (no newline, does not parse) is the
     signature of a crash mid-write: classified Truncated, message
     pinned. *)
  with_file_contents
    (good_line ^ "\n" ^ {|{"v":2,"type":"event","na|})
    (fun path ->
      match classify_all path with
      | [ `Ok; `Truncated msg ] ->
        if not (String.starts_with ~prefix:truncated_prefix msg) then
          Alcotest.failf "message not pinned: %S" msg
      | other ->
        Alcotest.failf "expected [Ok; Truncated], got %d results"
          (List.length other))

let test_midstream_garbage_is_malformed () =
  (* The same unparseable text mid-stream — i.e. newline-terminated, or
     followed by more lines — is corruption, not a torn tail. *)
  with_file_contents
    ({|{"v":2,"type":"event","na|} ^ "\n" ^ good_line ^ "\n")
    (fun path ->
      match classify_all path with
      | [ `Malformed; `Ok ] -> ()
      | _ -> Alcotest.fail "mid-stream garbage must classify Malformed");
  (* Newline-terminated garbage at the end of the file is also
     Malformed: the writer finished the line, so it was never torn. *)
  with_file_contents
    (good_line ^ "\n" ^ {|{"v":2,"type":"event","na|} ^ "\n")
    (fun path ->
      match classify_all path with
      | [ `Ok; `Malformed ] -> ()
      | _ -> Alcotest.fail "terminated garbage must classify Malformed")

let test_unterminated_complete_record_is_ok () =
  (* A complete record that merely lost its newline is indistinguishable
     from a complete write and must be delivered as Ok. *)
  with_file_contents
    (good_line ^ "\n" ^ good_line)
    (fun path ->
      match classify_all path with
      | [ `Ok; `Ok ] -> ()
      | _ -> Alcotest.fail "newline-less complete record must be Ok")

let test_json_classified_journal () =
  (* fold_json_classified: the dps_serve journal is raw JSONL, not
     schema'd trace lines — same torn-tail classification, Json-only
     parsing. *)
  let classify path =
    Reader.with_input path (fun ic ->
        List.rev
          (Reader.fold_json_classified ic ~init:[] ~f:(fun acc ~lineno:_ r ->
               (match r with
               | Ok _ -> `Ok
               | Error (Reader.Malformed _) -> `Malformed
               | Error (Reader.Truncated msg) -> `Truncated msg)
               :: acc)))
  in
  with_file_contents
    ({|{"op":"attach","tenant":"acme"}|} ^ "\n" ^ {|{"op":"inject","ten|})
    (fun path ->
      match classify path with
      | [ `Ok; `Truncated msg ] ->
        if not (String.starts_with ~prefix:truncated_prefix msg) then
          Alcotest.failf "journal message not pinned: %S" msg
      | _ -> Alcotest.fail "journal tail must classify Truncated");
  (* Trace-schema'd lines are NOT required: any valid JSON object passes. *)
  with_file_contents
    ({|{"anything":[1,2,3]}|} ^ "\n")
    (fun path ->
      match classify path with
      | [ `Ok ] -> ()
      | _ -> Alcotest.fail "raw JSON object must parse through Json")

(* ------------------------------------------------------ witness parity *)

let test_thm3_parity_with_live_verdict () =
  with_temp_file (fun path ->
      let report, run = traced_run path in
      let live = Stability.assess report.Protocol.in_system in
      match Witness.thm3 run with
      | Error msg -> Alcotest.failf "thm3 failed: %s" msg
      | Ok w ->
        (* Same series, same assessor: the offline verdict must agree
           with the live one verbatim, not just qualitatively. *)
        Alcotest.(check string) "verdict parity" (Stability.to_string live)
          (Stability.to_string w.Witness.t3_verdict);
        Alcotest.(check (float 1e-9)) "growth parity"
          (Stability.growth_per_frame report.Protocol.in_system)
          w.Witness.t3_growth;
        Alcotest.(check int) "frame count" 30 w.Witness.t3_frames)

let test_thm8_consistent_when_uncongested () =
  with_temp_file (fun path ->
      let _, run = traced_run path in
      match Witness.thm8 run with
      | Error msg -> Alcotest.failf "thm8 failed: %s" msg
      | Ok w ->
        Alcotest.(check bool) "p50 ratio within 2x of (d+delay)*T" true
          (w.Witness.t8_ratio.Analyze.p50 <= 2.0);
        Alcotest.(check int) "no unexplained outliers" 0
          w.Witness.t8_unexplained;
        Alcotest.(check bool) "consistent" true w.Witness.t8_consistent)

let test_thm11_flags_non_adversarial () =
  with_temp_file (fun path ->
      let _, run = traced_run path in
      match Witness.thm11 run with
      | Error msg -> Alcotest.failf "thm11 failed: %s" msg
      | Ok w ->
        (* Stochastic traffic never takes the delay wrapper. *)
        Alcotest.(check int) "no delayed packet" 0 w.Witness.t11_delayed;
        Alcotest.(check bool) "not adversarial" false w.Witness.t11_adversarial)

let test_no_packet_events_without_flag () =
  with_temp_file (fun path ->
      (* packet_trace omitted entirely: the v2 trace must contain no
         packet.* event — byte-compatibility with v1 consumers. *)
      let g = Topology.line ~nodes:3 ~spacing:1. in
      let m = Graph.link_count g in
      let cfg =
        Protocol.configure ~epsilon:0.5 ~algorithm:Oneshot.algorithm
          ~measure:(Measure.identity m) ~lambda:0.2 ~max_hops:2 ()
      in
      let oc = open_out path in
      let t = Telemetry.make ~sinks:[ Sink.jsonl oc ] () in
      ignore
        (Driver.run_traced ~telemetry:t ~metrics_every:0 ~config:cfg
           ~oracle:Oracle.Wireline ~source:Driver.Silent ~frames:3
           ~rng:(Rng.create ~seed:7 ()) ());
      Telemetry.close t;
      let run =
        Reader.with_input path (fun ic ->
            Lifecycle.of_lines (Reader.lines_exn ic))
      in
      Alcotest.(check int) "no traced packet" 0
        (List.length run.Lifecycle.packets);
      Alcotest.(check int) "frames still reconstructed" 3
        (List.length run.Lifecycle.frames);
      match Witness.thm11 run with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "thm11 should refuse a packet-less trace")

(* ------------------------------------------------------------------ run *)

let () =
  Alcotest.run "trace"
    [ ( "parser",
        [ Alcotest.test_case "json parse" `Quick test_json_parse;
          Alcotest.test_case "json rejects" `Quick test_json_rejects;
          Alcotest.test_case "line schema" `Quick test_line_schema ] );
      ( "lifecycle",
        [ Alcotest.test_case "reconstruction matches report" `Quick
            test_reconstruction_matches_report;
          Alcotest.test_case "sampling mod k" `Quick
            test_sampling_is_deterministic_mod_k;
          Alcotest.test_case "decomposition accounts slots" `Quick
            test_decomposition_accounts_all_slots;
          Alcotest.test_case "no packet events without flag" `Quick
            test_no_packet_events_without_flag ] );
      ( "reader",
        [ Alcotest.test_case "truncated final line pinned" `Quick
            test_truncated_final_line;
          Alcotest.test_case "midstream garbage malformed" `Quick
            test_midstream_garbage_is_malformed;
          Alcotest.test_case "unterminated complete record ok" `Quick
            test_unterminated_complete_record_is_ok;
          Alcotest.test_case "json classified journal" `Quick
            test_json_classified_journal ] );
      ( "witness",
        [ Alcotest.test_case "thm3 parity with live verdict" `Quick
            test_thm3_parity_with_live_verdict;
          Alcotest.test_case "thm8 consistent uncongested" `Quick
            test_thm8_consistent_when_uncongested;
          Alcotest.test_case "thm11 flags non-adversarial" `Quick
            test_thm11_flags_non_adversarial ] );
    ]
