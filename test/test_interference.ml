(* Unit and property tests for the interference measure and conflict
   graphs — the paper's central abstraction (Sections 2 and 7.2). *)

module Rng = Dps_prelude.Rng
module Measure = Dps_interference.Measure
module Load = Dps_interference.Load
module Conflict_graph = Dps_interference.Conflict_graph
module Topology = Dps_network.Topology
module Graph = Dps_network.Graph
module Path = Dps_network.Path

let check_float = Alcotest.(check (float 1e-9))

(* -------------------------------------------------------------- Measure *)

let test_identity_measure () =
  let w = Measure.identity 4 in
  Alcotest.(check int) "size" 4 (Measure.size w);
  check_float "diagonal" 1. (Measure.weight w 2 2);
  check_float "off-diagonal" 0. (Measure.weight w 0 1);
  (* Identity measure = congestion. *)
  check_float "congestion" 5. (Measure.interference w [| 2.; 5.; 0.; 1. |])

let test_complete_measure () =
  let w = Measure.complete 3 in
  check_float "all ones" 1. (Measure.weight w 0 2);
  (* Complete measure = total packet count. *)
  check_float "total" 8. (Measure.interference w [| 2.; 5.; 1. |])

let test_of_function_clamps () =
  let w = Measure.of_function ~m:3 (fun e e' -> if e < e' then 2.5 else -1.) in
  check_float "clamped high" 1. (Measure.weight w 0 1);
  check_float "clamped low (dropped)" 0. (Measure.weight w 2 0);
  check_float "diagonal forced" 1. (Measure.weight w 2 2)

let test_of_rows_diagonal () =
  let w = Measure.of_rows [| [ (1, 0.5) ]; [] |] in
  check_float "explicit entry" 0.5 (Measure.weight w 0 1);
  check_float "diagonal present" 1. (Measure.weight w 1 1)

let test_of_rows_rejects_bad () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Measure: link id out of range") (fun () ->
      ignore (Measure.of_rows [| [ (5, 0.5) ] |]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Measure: duplicate entry in row") (fun () ->
      ignore (Measure.of_rows [| [ (1, 0.5); (1, 0.2) ]; [] |]));
  Alcotest.check_raises "weight range"
    (Invalid_argument "Measure: weight outside (0, 1]") (fun () ->
      ignore (Measure.of_rows [| [ (1, 1.5) ]; [] |]))

let test_of_rows_error_paths () =
  let out_of_range = Invalid_argument "Measure: link id out of range" in
  let bad_weight = Invalid_argument "Measure: weight outside (0, 1]" in
  Alcotest.check_raises "negative id" out_of_range (fun () ->
      ignore (Measure.of_rows [| [ (-1, 0.5) ]; [] |]));
  Alcotest.check_raises "id = m boundary" out_of_range (fun () ->
      ignore (Measure.of_rows [| []; [ (2, 0.5) ] |]));
  Alcotest.check_raises "zero weight" bad_weight (fun () ->
      ignore (Measure.of_rows [| [ (1, 0.) ]; [] |]));
  Alcotest.check_raises "negative weight" bad_weight (fun () ->
      ignore (Measure.of_rows [| [ (1, -0.25) ]; [] |]));
  Alcotest.check_raises "weight just above 1" bad_weight (fun () ->
      ignore (Measure.of_rows [| [ (1, 1.0000001) ]; [] |]));
  Alcotest.check_raises "duplicate deep in a longer row"
    (Invalid_argument "Measure: duplicate entry in row") (fun () ->
      ignore
        (Measure.of_rows
           [| [ (1, 0.1); (2, 0.2); (3, 0.3); (2, 0.4) ]; []; []; [] |]));
  Alcotest.check_raises "bad entry in a later row" out_of_range (fun () ->
      ignore (Measure.of_rows [| [ (1, 0.5) ]; [ (9, 0.5) ] |]));
  (* NaN compares false against both range bounds; it must still be
     rejected, not silently stored. *)
  Alcotest.check_raises "NaN weight" bad_weight (fun () ->
      ignore (Measure.of_rows [| [ (1, Float.nan) ]; [] |]));
  (* A declared size must match the row count exactly, and an empty row
     array can no longer build a 0-link measure by accident. *)
  Alcotest.check_raises "declared m too large"
    (Invalid_argument "Measure: of_rows got 2 rows for declared size m = 3")
    (fun () -> ignore (Measure.of_rows ~m:3 [| [ (1, 0.5) ]; [] |]));
  Alcotest.check_raises "declared m too small"
    (Invalid_argument "Measure: of_rows got 2 rows for declared size m = 1")
    (fun () -> ignore (Measure.of_rows ~m:1 [| [ (1, 0.5) ]; [] |]));
  Alcotest.check_raises "empty rows"
    (Invalid_argument "Measure: of_rows needs at least one row") (fun () ->
      ignore (Measure.of_rows [||]));
  let w = Measure.of_rows ~m:2 [| [ (1, 0.5) ]; [] |] in
  check_float "matching declared m accepted" 0.5 (Measure.weight w 0 1);
  (* Boundary acceptances. *)
  let w = Measure.of_rows [| [ (1, 1.) ]; [] |] in
  check_float "weight exactly 1 accepted" 1. (Measure.weight w 0 1);
  (* An explicit diagonal entry is forced to 1, not doubled. *)
  let w = Measure.of_rows [| [ (0, 0.5); (1, 0.25) ]; [] |] in
  check_float "diagonal forced to 1" 1. (Measure.weight w 0 0);
  check_float "off-diagonal kept" 0.25 (Measure.weight w 0 1)

let test_interference_at () =
  let w =
    Measure.of_function ~m:3 (fun e e' ->
        if e = 0 && e' > 0 then 0.5 else 0.)
  in
  let load = [| 1.; 2.; 4. |] in
  check_float "row 0" (1. +. 1. +. 2.) (Measure.interference_at w load 0);
  check_float "row 1" 2. (Measure.interference_at w load 1);
  check_float "max row" 4. (Measure.interference w load)

let test_interference_of_counts () =
  let w = Measure.identity 3 in
  check_float "counts" 7. (Measure.interference_of_counts w [| 1; 7; 3 |])

let test_max_row_sum () =
  let w = Measure.complete 4 in
  check_float "complete row sum" 4. (Measure.max_row_sum w);
  let w = Measure.identity 9 in
  check_float "identity row sum" 1. (Measure.max_row_sum w)

(* ----------------------------------------------------------------- Load *)

let test_load_of_paths () =
  let g = Topology.line ~nodes:4 ~spacing:1. in
  (* Forward links along the line are ids 0, 2, 4 (alternating with their
     reverses). Find them through routing instead of guessing. *)
  let r = Dps_network.Routing.make g in
  let p = Option.get (Dps_network.Routing.path r ~src:0 ~dst:3) in
  let load = Load.of_paths (Graph.link_count g) [ p; p ] in
  Alcotest.(check int) "path length" 3 (Path.length p);
  for i = 0 to Path.length p - 1 do
    check_float "each hop counted twice" 2. load.(Path.hop p i)
  done;
  check_float "total mass" 6. (Array.fold_left ( +. ) 0. load)

let test_load_of_link_counts () =
  let load = Load.of_link_counts 4 [ (0, 2); (2, 1); (0, 1) ] in
  Alcotest.(check (array (float 1e-9))) "summed" [| 3.; 0.; 1.; 0. |] load

let test_load_arithmetic () =
  let a = [| 1.; 2. |] and b = [| 3.; 4. |] in
  Alcotest.(check (array (float 1e-9))) "add" [| 4.; 6. |] (Load.add a b);
  Alcotest.(check (array (float 1e-9))) "scale" [| 2.; 4. |] (Load.scale 2. a)

(* ------------------------------------------------------------- Conflict *)

let test_conflict_create () =
  let cg = Conflict_graph.create ~links:4 ~conflicts:[ (0, 1); (1, 2); (0, 1) ] in
  Alcotest.(check int) "size" 4 (Conflict_graph.size cg);
  Alcotest.(check bool) "0-1 conflict" true (Conflict_graph.conflict cg 0 1);
  Alcotest.(check bool) "symmetric" true (Conflict_graph.conflict cg 1 0);
  Alcotest.(check bool) "no self conflict" false (Conflict_graph.conflict cg 1 1);
  Alcotest.(check bool) "absent" false (Conflict_graph.conflict cg 0 3);
  Alcotest.(check int) "dedup degree" 1 (Conflict_graph.degree cg 0);
  Alcotest.(check int) "degree of 1" 2 (Conflict_graph.degree cg 1)

let test_conflict_independent () =
  let cg = Conflict_graph.create ~links:4 ~conflicts:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "independent" true (Conflict_graph.independent cg [ 0; 2 ]);
  Alcotest.(check bool) "dependent" false (Conflict_graph.independent cg [ 0; 1; 2 ])

let test_node_constraint () =
  let g = Topology.line ~nodes:3 ~spacing:1. in
  let cg = Conflict_graph.node_constraint g in
  (* Every pair of links on a 3-node line shares the middle node, except the
     two outer link pairs... enumerate: links 0:(0-1),1:(1-0),2:(1-2),3:(2-1).
     All share node 1 pairwise. *)
  for a = 0 to 3 do
    for b = a + 1 to 3 do
      Alcotest.(check bool) "all share node 1" true (Conflict_graph.conflict cg a b)
    done
  done

let test_node_constraint_disjoint () =
  let g = Topology.line ~nodes:4 ~spacing:1. in
  let cg = Conflict_graph.node_constraint g in
  (* Link 0-1 and link 2-3 share no endpoint. *)
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let l23 = Option.get (Graph.find_link g ~src:2 ~dst:3) in
  Alcotest.(check bool) "disjoint links do not conflict" false
    (Conflict_graph.conflict cg l01 l23)

let test_distance2_wider_than_node () =
  let g = Topology.line ~nodes:4 ~spacing:1. in
  let node = Conflict_graph.node_constraint g in
  let d2 = Conflict_graph.distance2 g in
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let l23 = Option.get (Graph.find_link g ~src:2 ~dst:3) in
  (* Distance-2: endpoints 1 and 2 are adjacent, so these links conflict. *)
  Alcotest.(check bool) "node constraint: no" false
    (Conflict_graph.conflict node l01 l23);
  Alcotest.(check bool) "distance-2: yes" true (Conflict_graph.conflict d2 l01 l23)

let test_protocol_model () =
  let g = Topology.line ~nodes:3 ~spacing:1. in
  let cg = Conflict_graph.protocol_model g ~delta:0.5 in
  (* Adjacent links conflict under any reasonable guard zone. *)
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let l12 = Option.get (Graph.find_link g ~src:1 ~dst:2) in
  Alcotest.(check bool) "adjacent conflict" true (Conflict_graph.conflict cg l01 l12)

let test_degeneracy_order_is_permutation () =
  let g = Topology.grid ~rows:3 ~cols:3 ~spacing:1. in
  let cg = Conflict_graph.distance2 g in
  let order = Conflict_graph.degeneracy_order cg in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation"
    (Array.init (Conflict_graph.size cg) Fun.id)
    sorted

let test_independence_bound_positive () =
  let g = Topology.grid ~rows:2 ~cols:3 ~spacing:1. in
  let cg = Conflict_graph.node_constraint g in
  let order = Conflict_graph.degeneracy_order cg in
  let rng = Rng.create ~seed:6 () in
  let rho = Conflict_graph.independence_bound cg ~order ~samples:20 rng in
  Alcotest.(check bool) "rho at least 1" true (rho >= 1);
  (* Node-constraint conflict graphs of bounded-degree networks have small
     inductive independence. *)
  Alcotest.(check bool) "rho small" true (rho <= 4)

let test_conflict_to_measure () =
  let cg = Conflict_graph.create ~links:3 ~conflicts:[ (0, 1); (1, 2) ] in
  let order = [| 0; 1; 2 |] in
  let w = Conflict_graph.to_measure cg ~order in
  (* Row e charges conflicting links of rank <= rank(e). *)
  check_float "w(1,0)" 1. (Measure.weight w 1 0);
  check_float "w(0,1) zero (1 ranks later)" 0. (Measure.weight w 0 1);
  check_float "w(2,1)" 1. (Measure.weight w 2 1);
  check_float "w(2,0) no conflict" 0. (Measure.weight w 2 0);
  check_float "diagonal" 1. (Measure.weight w 0 0)

let test_conflict_measure_interference () =
  let cg = Conflict_graph.create ~links:3 ~conflicts:[ (0, 1); (1, 2) ] in
  let order = [| 0; 1; 2 |] in
  let w = Conflict_graph.to_measure cg ~order in
  (* One packet per link: row 1 sees itself + link 0; row 2 sees itself +
     link 1. *)
  check_float "I" 2. (Measure.interference w [| 1.; 1.; 1. |])

(* ------------------------------------------------------------ property *)

let arb_load m = QCheck.(array_of_size (QCheck.Gen.return m) (float_bound_inclusive 10.))

let prop_interference_monotone =
  QCheck.Test.make ~count:200 ~name:"interference monotone in the load"
    (arb_load 6)
    (fun load ->
      let w = Measure.complete 6 in
      let bigger = Array.map (fun x -> x +. 1.) load in
      Measure.interference w load <= Measure.interference w bigger)

let prop_interference_subadditive =
  QCheck.Test.make ~count:200 ~name:"interference subadditive"
    QCheck.(pair (arb_load 5) (arb_load 5))
    (fun (a, b) ->
      let w = Measure.identity 5 in
      Measure.interference w (Load.add a b)
      <= Measure.interference w a +. Measure.interference w b +. 1e-9)

let prop_interference_scales =
  QCheck.Test.make ~count:200 ~name:"interference is homogeneous"
    QCheck.(pair (arb_load 5) (float_bound_inclusive 5.))
    (fun (a, c) ->
      let w = Measure.complete 5 in
      Float.abs
        (Measure.interference w (Load.scale c a) -. (c *. Measure.interference w a))
      < 1e-6)

let prop_identity_bounds_any_measure =
  QCheck.Test.make ~count:100
    ~name:"congestion lower-bounds any measure with unit diagonal"
    (arb_load 6)
    (fun load ->
      let congestion = Measure.interference (Measure.identity 6) load in
      let w =
        Measure.of_function ~m:6 (fun e e' -> if e = e' then 1. else 0.3)
      in
      Measure.interference w load >= congestion -. 1e-9)

let prop_degeneracy_order_always_permutation =
  QCheck.Test.make ~count:50 ~name:"degeneracy order is always a permutation"
    QCheck.(pair (int_range 1 12) (list (pair (int_range 0 11) (int_range 0 11))))
    (fun (n, edges) ->
      let edges =
        List.filter (fun (a, b) -> a < n && b < n && a <> b) edges
      in
      let cg = Conflict_graph.create ~links:n ~conflicts:edges in
      let order = Conflict_graph.degeneracy_order cg in
      let sorted = Array.copy order in
      Array.sort compare sorted;
      sorted = Array.init n Fun.id)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "interference"
    [ ( "measure",
        [ quick "identity" test_identity_measure;
          quick "complete" test_complete_measure;
          quick "of_function clamps" test_of_function_clamps;
          quick "of_rows diagonal" test_of_rows_diagonal;
          quick "of_rows rejects bad input" test_of_rows_rejects_bad;
          quick "of_rows error paths" test_of_rows_error_paths;
          quick "interference_at" test_interference_at;
          quick "interference of counts" test_interference_of_counts;
          quick "max_row_sum" test_max_row_sum ] );
      ( "load",
        [ quick "of_paths" test_load_of_paths;
          quick "of_link_counts" test_load_of_link_counts;
          quick "arithmetic" test_load_arithmetic ] );
      ( "conflict-graph",
        [ quick "create" test_conflict_create;
          quick "independent" test_conflict_independent;
          quick "node constraint" test_node_constraint;
          quick "node constraint disjoint" test_node_constraint_disjoint;
          quick "distance-2 wider" test_distance2_wider_than_node;
          quick "protocol model" test_protocol_model;
          quick "degeneracy order" test_degeneracy_order_is_permutation;
          quick "independence bound" test_independence_bound_positive;
          quick "to_measure" test_conflict_to_measure;
          quick "measure interference" test_conflict_measure_interference ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_interference_monotone;
            prop_interference_subadditive;
            prop_interference_scales;
            prop_identity_bounds_any_measure;
            prop_degeneracy_order_always_permutation ] ) ]
