(* Parallel determinism smoke: the jobs-invariance golden at toy sizes,
   with real domains (jobs = 2), on every `dune runtest` via @par-smoke.

   test_par proves Par.map ≡ List.map and pins the call-site goldens;
   this executable is the belt-and-braces end-to-end check that a
   multi-domain run of the two dps_core fan-out sites — replicated runs
   and the speculative sweep — produces byte-identical telemetry to the
   sequential run. It is deliberately tiny: a few frames, six stations,
   seconds of work. Any diff is a determinism regression in the pool or
   the merge order. *)

module Rng = Dps_prelude.Rng
module Topology = Dps_network.Topology
module Path = Dps_network.Path
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Sweep = Dps_core.Sweep
module Oracle = Dps_sim.Oracle
module Stochastic = Dps_injection.Stochastic
module Telemetry = Dps_telemetry.Telemetry
module Memory_sink = Dps_telemetry.Memory_sink

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "par-smoke FAIL: %s\n" name
  end

let check_streams name (a : Memory_sink.t) (b : Memory_sink.t) =
  check (name ^ ": event stream")
    (Memory_sink.event_lines a = Memory_sink.event_lines b);
  check (name ^ ": snapshots") (Memory_sink.snapshots a = Memory_sink.snapshots b)

let run_many_golden () =
  let stations = 6 in
  let lambda = 0.15 in
  let g = Topology.mac_channel ~stations in
  let config =
    Protocol.configure ~epsilon:0.5
      ~algorithm:(Dps_mac.Decay.make ~delta:0.3 ())
      ~measure:(Dps_mac.Mac_measure.make ~m:stations)
      ~lambda ~max_hops:1 ()
  in
  let per = lambda /. float_of_int stations in
  let inj =
    Stochastic.make (List.init stations (fun i -> [ (Path.of_links g [ i ], per) ]))
  in
  let observe jobs =
    let recorder = Memory_sink.create () in
    let telemetry = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let reports =
      Driver.run_many ~jobs ~telemetry ~metrics_every:2 ~config
        ~oracle:Oracle.Mac ~source:(Driver.Stochastic inj)
        ~seeds:[ 7; 8; 9 ] ~frames:3 ()
    in
    (List.map (fun r -> (r.Protocol.injected, r.Protocol.delivered)) reports,
     recorder)
  in
  let r1, m1 = observe 1 in
  let r2, m2 = observe 2 in
  check "run_many: reports" (r1 = r2);
  check_streams "run_many" m1 m2

let sweep_golden () =
  let observe jobs =
    let recorder = Memory_sink.create () in
    let telemetry = Telemetry.make ~sinks:[ Memory_sink.sink recorder ] () in
    let outcome =
      Sweep.critical_rate ~telemetry ~jobs ~speculate:3
        ~probe:(fun r -> r <= 0.37)
        ~lo:0.01 ~hi:1. ~tolerance:0.02 ()
    in
    (outcome, recorder)
  in
  let o1, m1 = observe 1 in
  let o2, m2 = observe 2 in
  check "sweep: outcome" (o1 = o2);
  check_streams "sweep" m1 m2

let () =
  run_many_golden ();
  sweep_golden ();
  if !failures > 0 then exit 1;
  print_endline "par-smoke: jobs=2 byte-identical to jobs=1 (run_many, sweep)"
