(* dps_serve — crash-safe multi-tenant scheduling daemon.

   Commands arrive as JSONL (one request per line) on stdin or a Unix
   domain socket; every request gets exactly one JSON reply line.
   Logical time advances only through {"do":"step"} commands, so the
   daemon is fully deterministic: a fixed request stream yields a
   byte-fixed reply stream, and the write-ahead journal replays to the
   same state after a crash (kill -9 included).

   Examples:
     dps_serve --model wireline --topology line:6 --rate 0.3 \
       --tenant acme:urllc --checkpoint /tmp/ck
     dps_serve --checkpoint /tmp/ck --restore
     dps_serve --model mac --rate 0.15 --socket /tmp/dps.sock

   Wire protocol, checkpoint format and failure modes: docs/SERVING.md.
*)

module Sink = Dps_telemetry.Sink
module Scenario = Dps_serve.Scenario
module Classes = Dps_serve.Classes
module Wire = Dps_serve.Wire
module Engine = Dps_serve.Engine

exception Shutdown_signal

let install_signal_handlers () =
  let raise_shutdown _ = raise Shutdown_signal in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle raise_shutdown);
  Sys.set_signal Sys.sigint (Sys.Signal_handle raise_shutdown)

(* NAME:CLASS[:RATE[:BURST]] *)
let parse_tenant s =
  let num what v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> failwith ("--tenant: " ^ what ^ " must be a number")
  in
  let klass name =
    match Classes.of_string name with
    | Ok k -> k
    | Error msg -> failwith ("--tenant: " ^ msg)
  in
  match String.split_on_char ':' s with
  | [ name; k ] -> (name, klass k, None, None)
  | [ name; k; rate ] -> (name, klass k, Some (num "RATE" rate), None)
  | [ name; k; rate; burst ] ->
    (name, klass k, Some (num "RATE" rate), Some (num "BURST" burst))
  | _ -> failwith "--tenant must be NAME:CLASS[:RATE[:BURST]]"

(* Merge --fault flags and the --fault-plan file into one comma-joined
   spec string: that is what the checkpoint header stores, so a restore
   rebuilds the identical plan without re-reading the file. *)
let merge_fault_specs ~fault_specs ~fault_plan =
  let from_file =
    match fault_plan with
    | None -> []
    | Some file ->
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let specs = ref [] in
          (try
             while true do
               let line = String.trim (input_line ic) in
               if line <> "" && line.[0] <> '#' then specs := line :: !specs
             done
           with End_of_file -> ());
          List.rev !specs)
  in
  match fault_specs @ from_file with
  | [] -> None
  | specs -> Some (String.concat "," specs)

let make_sinks ~trace ~metrics =
  let opened = ref [] in
  let open_sink path mk =
    if path = "-" then
      failwith "dps_serve: sinks cannot claim stdout (it carries replies)"
    else begin
      let oc = open_out path in
      opened := oc :: !opened;
      mk oc
    end
  in
  let sinks =
    List.concat
      [ (match trace with
        | None -> []
        | Some path -> [ open_sink path Sink.jsonl ]);
        (match metrics with
        | None -> []
        | Some path -> [ open_sink path Sink.csv ]) ]
  in
  (sinks, fun () -> List.iter close_out !opened)

let render_outcome = function
  | Engine.Admitted { first_id; copies } ->
    [ ("outcome", Wire.Str "admitted");
      ("id", Wire.Int first_id);
      ("copies", Wire.Int copies) ]
  | Engine.Shed { klass } ->
    [ ("outcome", Wire.Str "shed");
      ("class", Wire.Str (Classes.to_string klass)) ]
  | Engine.Overloaded { retry_after } ->
    [ ("outcome", Wire.Str "overloaded");
      ("retry_after_frames", Wire.Int retry_after) ]
  | Engine.Too_large { burst } ->
    [ ("outcome", Wire.Str "too-large"); ("burst", Wire.Float burst) ]

(* One request line -> one reply line. Every failure becomes a
   diagnostic reply; nothing a client sends can take the daemon down.
   [push] writes one extra line on the reply stream — the metrics
   subscription target, bound to the current client. Pushes happen
   inside Engine.step, so subscribed metrics lines appear *before* the
   step reply that produced them: a deterministic interleaving. *)
let handle engine ~stop ~push line =
  match Wire.parse line with
  | Error msg -> Wire.error ~err:msg []
  | Ok cmd -> (
    match cmd with
    | Wire.Inject { tenant; links; delay; copies } -> (
      match Engine.submit engine ~tenant ~links ~delay ~copies with
      | Error msg -> Wire.error ~err:msg []
      | Ok outcome -> Wire.ok ~cmd:"inject" (render_outcome outcome))
    | Wire.Step { frames } ->
      Engine.step engine ~frames;
      Wire.ok ~cmd:"step"
        [ ("frame", Wire.Int (Engine.frame engine));
          ("in_flight", Wire.Int (Engine.in_flight engine)) ]
    | Wire.Status -> Wire.ok ~cmd:"status" (Engine.status_fields engine)
    | Wire.Stats -> Wire.ok ~cmd:"stats" (Engine.stats_fields engine)
    | Wire.Subscribe { every } -> (
      match Engine.subscribe engine ~every ~push with
      | Error msg -> Wire.error ~err:msg []
      | Ok () -> Wire.ok ~cmd:"subscribe" [ ("every", Wire.Int every) ])
    | Wire.Unsubscribe ->
      let was = Engine.unsubscribe engine in
      Wire.ok ~cmd:"unsubscribe" [ ("was_subscribed", Wire.Bool was) ]
    | Wire.Checkpoint ->
      Engine.checkpoint engine;
      Wire.ok ~cmd:"checkpoint" [ ("frame", Wire.Int (Engine.frame engine)) ]
    | Wire.Attach { tenant; klass; rate; burst } -> (
      match Engine.attach engine ~tenant ~klass ?rate ?burst () with
      | Error msg -> Wire.error ~err:msg []
      | Ok () ->
        Wire.ok ~cmd:"attach"
          [ ("tenant", Wire.Str tenant);
            ("class", Wire.Str (Classes.to_string klass)) ])
    | Wire.Detach { tenant } -> (
      match Engine.detach engine ~tenant with
      | Error msg -> Wire.error ~err:msg []
      | Ok () -> Wire.ok ~cmd:"detach" [ ("tenant", Wire.Str tenant) ])
    | Wire.Quit ->
      stop := true;
      Wire.ok ~cmd:"quit" [ ("frame", Wire.Int (Engine.frame engine)) ])

(* One client session. EOF ends the session only; [stop] (the quit
   command) ends the daemon — so in socket mode a monitor can attach,
   look, and detach without taking the service down, while in
   stdin/stdout mode the caller exits after the single session anyway. *)
let serve_channel engine ic oc ~stop =
  let push line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let connected = ref true in
  while !connected && not !stop do
    match input_line ic with
    | exception End_of_file -> connected := false
    | line ->
      if String.trim line <> "" then begin
        output_string oc (handle engine ~stop ~push line);
        output_char oc '\n';
        flush oc
      end
  done

let serve_socket engine path ~stop =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Printf.eprintf "dps_serve: listening on %s\n%!" path;
      while not !stop do
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        (* One client at a time: replies are totally ordered, which the
           determinism story depends on. *)
        (try serve_channel engine ic oc ~stop
         with Sys_error _ | End_of_file -> ());
        (* The subscription is bound to this client's channel; drop it
           before the fd can be recycled for the next connection. *)
        ignore (Engine.unsubscribe engine);
        (try flush oc with Sys_error _ -> ());
        try Unix.close conn with Unix.Unix_error _ -> ()
      done)

let run model topology algorithm rate epsilon stations loss sparse tile seed
    tenants class_guard fault_specs fault_plan socket checkpoint restore
    checkpoint_every trace metrics metrics_every jobs =
  if restore && checkpoint = None then
    failwith "--restore needs --checkpoint DIR";
  if jobs < 1 then failwith "--jobs must be >= 1";
  (* An execution knob, never state: results, journals and checkpoints
     are byte-identical for every jobs value, so clamping to what the
     machine runs well is invisible (docs/PARALLELISM.md). *)
  let jobs = Int.min jobs (Dps_par.Par.recommended_jobs ()) in
  let sinks, close_sinks = make_sinks ~trace ~metrics in
  let faults = merge_fault_specs ~fault_specs ~fault_plan in
  let engine =
    if restore then begin
      let dir = Option.get checkpoint in
      match Engine.restore ~sinks ~jobs ~dir () with
      | Error msg -> failwith ("restore: " ^ msg)
      | Ok (engine, r) ->
        Printf.eprintf
          "dps_serve: restored frame=%d ops=%d%s\n%!"
          r.Engine.replayed_frames r.Engine.replayed_ops
          (if r.Engine.dropped_tail then " (dropped torn journal tail)"
           else "");
        engine
    end
    else begin
      let scenario =
        Scenario.make ?algorithm ~epsilon ~stations ~loss ?sparse ?tile
          ~model ~topology ~rate ()
      in
      let cfg =
        Engine.default_config ?guard:class_guard ?faults ~checkpoint_every
          ~metrics_every ~scenario ~seed ()
      in
      let engine = Engine.create ~sinks ?checkpoint_dir:checkpoint ~jobs cfg in
      List.iter
        (fun spec ->
          let tenant, klass, rate, burst = parse_tenant spec in
          match Engine.attach engine ~tenant ~klass ?rate ?burst () with
          | Ok () -> ()
          | Error msg -> failwith ("--tenant: " ^ msg))
        tenants;
      engine
    end
  in
  install_signal_handlers ();
  let stop = ref false in
  let finish () =
    (* Graceful exit — also the signal path: final metrics snapshot,
       checkpoint, journal close, sink flush, then close the files. *)
    Engine.close engine;
    close_sinks ()
  in
  match
    match socket with
    | Some path -> serve_socket engine path ~stop
    | None -> serve_channel engine stdin stdout ~stop
  with
  | () -> finish ()
  | exception Shutdown_signal ->
    Printf.eprintf "dps_serve: signal received, checkpointing\n%!";
    finish ()
  | exception e ->
    finish ();
    raise e

open Cmdliner

let model =
  Arg.(
    value
    & opt string "sinr-linear"
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Interference model: sinr-linear, sinr-sqrt, sinr-pc, conflict-d2, \
           node-constraint, radio, mac, wireline.")

let topology =
  Arg.(
    value
    & opt string "grid:4x4"
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:"Topology: grid:RxC, line:N, random:N (mac model ignores this).")

let algorithm =
  Arg.(
    value
    & opt (some string) None
    & info [ "algorithm" ] ~docv:"ALGO"
        ~doc:"Static algorithm (as in dps_run). Default: model-appropriate.")

let rate =
  Arg.(
    value & opt float 0.04
    & info [ "rate" ] ~docv:"LAMBDA" ~doc:"Injection rate λ = ||W·F||_inf.")

let epsilon =
  Arg.(
    value & opt float 0.5
    & info [ "epsilon" ] ~docv:"EPS" ~doc:"Protocol headroom ε in (0, 1].")

let stations =
  Arg.(
    value & opt int 8
    & info [ "stations" ] ~docv:"N" ~doc:"Stations for the mac model.")

let loss =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P"
        ~doc:"Per-transmission loss probability (unreliable networks).")

let sparse =
  Arg.(
    value
    & opt (some float) None
    & info [ "sparse" ] ~docv:"EPS"
        ~doc:
          "Build the interference matrix through the ε-sparsified tiled \
           engine (sinr-linear only). See docs/SCALING.md.")

let tile =
  Arg.(
    value
    & opt (some float) None
    & info [ "tile" ] ~docv:"CELL" ~doc:"Tile side for $(b,--sparse).")

let seed =
  Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let tenants =
  Arg.(
    value & opt_all string []
    & info [ "tenant" ] ~docv:"NAME:CLASS[:RATE[:BURST]]"
        ~doc:
          "Attach a tenant at boot: a name, a service class (urllc, embb, \
           mmtc) and an optional token-bucket quota (tokens per frame and \
           burst cap; class defaults otherwise). Repeatable. Ignored with \
           $(b,--restore) — restored tenants come from the journal.")

let class_guard =
  Arg.(
    value
    & opt (some string) None
    & info [ "class-guard" ] ~docv:"H:L[,H:L[,H:L]]"
        ~doc:
          "Class-aware overload shedding: hysteresis watermarks on the \
           failed-buffer potential, one HIGH:LOW pair per shed priority \
           starting with mmtc (shed first). Watermarks must be nested \
           (non-decreasing), which guarantees a higher class is never shed \
           while a lower one is admitted. See docs/SERVING.md §3.")

let fault =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject a fault episode (same grammar as dps_run; see \
           docs/FAULTS.md). Repeatable.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"FILE"
        ~doc:
          "Load fault episodes from $(docv): one spec per line, $(b,#) \
           comments. Merged with any $(b,--fault) flags.")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on a Unix domain socket at $(docv) (one client at a time) \
           instead of stdin/stdout.")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Write the crash-safe checkpoint (versioned header + write-ahead \
           journal) under $(docv). Without it the daemon runs in-memory \
           only.")

let restore =
  Arg.(
    value & flag
    & info [ "restore" ]
        ~doc:
          "Rebuild state from the $(b,--checkpoint) directory by replaying \
           the journal, then resume serving (and journaling) from there.")

let checkpoint_every =
  Arg.(
    value & opt int 16
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "fsync the journal and rewrite the header every $(docv) frames \
           (0 = only on explicit checkpoint commands and shutdown).")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL telemetry trace to $(docv) (not $(b,-): stdout \
           carries replies). Schema: docs/OBSERVABILITY.md.")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write metric snapshots as CSV to $(docv).")

let metrics_every =
  Arg.(
    value & opt int 0
    & info [ "metrics-every" ] ~docv:"N"
        ~doc:
          "Emit a metrics snapshot every $(docv) frames (0 = final snapshot \
           only).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate $(b,--sparse) interference tile-parallel on $(docv) \
           domains (clamped to the machine's recommended domain count). An \
           execution knob, not state: replies, journals and checkpoints are \
           byte-identical for every $(docv). Rejected when $(docv) < 1.")

let run_safely model topology algorithm rate epsilon stations loss sparse tile
    seed tenants class_guard fault_specs fault_plan socket checkpoint restore
    checkpoint_every trace metrics metrics_every jobs =
  try
    run model topology algorithm rate epsilon stations loss sparse tile seed
      tenants class_guard fault_specs fault_plan socket checkpoint restore
      checkpoint_every trace metrics metrics_every jobs
  with Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "dps_serve: %s\n" msg;
    exit 1

let cmd =
  let doc = "crash-safe multi-tenant scheduling daemon (JSONL over stdin or \
             a Unix socket)" in
  let man =
    [ `S Manpage.s_examples;
      `P "Serve a wireline path with one URLLC tenant, checkpointing:";
      `Pre
        "  dps_serve --model wireline --topology line:6 --rate 0.3 \\\\\n\
        \    --tenant acme:urllc --checkpoint /tmp/ck";
      `P "Crash recovery — replay the journal and continue:";
      `Pre "  dps_serve --checkpoint /tmp/ck --restore";
      `P "Class-aware shedding under overload (mmtc shed first):";
      `Pre
        "  dps_serve --model mac --rate 0.15 --tenant iot:mmtc --tenant \
         web:embb \\\\\n\
        \    --tenant ctrl:urllc --class-guard 40:10,80:20,160:40";
      `P "A request stream, one JSON object per line:";
      `Pre
        "  {\"do\":\"inject\",\"tenant\":\"acme\",\"path\":[0,1,2]}\n\
        \  {\"do\":\"step\",\"frames\":4}\n\
        \  {\"do\":\"status\"}\n\
        \  {\"do\":\"quit\"}";
      `S Manpage.s_see_also;
      `P
        "docs/SERVING.md (wire protocol, checkpoint format, tenant \
         configuration, failure modes); docs/CLI.md; docs/FAULTS.md." ]
  in
  Cmd.v
    (Cmd.info "dps_serve" ~doc ~man)
    Term.(
      const run_safely $ model $ topology $ algorithm $ rate $ epsilon
      $ stations $ loss $ sparse $ tile $ seed $ tenants $ class_guard $ fault
      $ fault_plan $ socket $ checkpoint $ restore $ checkpoint_every $ trace
      $ metrics $ metrics_every $ jobs)

let () = exit (Cmd.eval cmd)
