(* dps_run — command-line front end for ad-hoc protocol runs.

   Pick a topology, an interference model, a static algorithm and an
   injection source; the tool sizes the protocol, runs it, and prints the
   stability report.

   Examples:
     dps_run --model sinr-linear --topology grid:4x4 --rate 0.04
     dps_run --model mac --algorithm decay --stations 8 --rate 0.15
     dps_run --model wireline --topology line:8 --rate 0.3 --adversary burst
     dps_run --model sinr-linear --rate 0.04 --trace t.jsonl --metrics m.csv
     dps_run --model mac --rate 0.15 --reps 8 --jobs 4
     dps_run --model sinr-linear --topology grid:8x8 --rate 0.04 --sparse 0.1

   The full flag reference lives in docs/CLI.md; the trace/metrics output
   format in docs/OBSERVABILITY.md.
*)

module Rng = Dps_prelude.Rng
module Graph = Dps_network.Graph
module Routing = Dps_network.Routing
module Path = Dps_network.Path
module Measure = Dps_interference.Measure
module Tiled = Dps_interference.Tiled
module Tiling = Dps_geometry.Tiling
module Algorithm = Dps_static.Algorithm
module Stochastic = Dps_injection.Stochastic
module Adversary = Dps_injection.Adversary
module Protocol = Dps_core.Protocol
module Driver = Dps_core.Driver
module Stability = Dps_core.Stability
module Plan = Dps_faults.Plan
module Injector = Dps_faults.Injector
module Telemetry = Dps_telemetry.Telemetry
module Sink = Dps_telemetry.Sink
module Scenario = Dps_serve.Scenario

let build_traffic rng g measure ~flows ~rate ~max_hops ~mac =
  if mac then begin
    let m = Graph.link_count g in
    let per = rate /. float_of_int m in
    Stochastic.make (List.init m (fun i -> [ (Path.of_links g [ i ], per) ]))
  end
  else begin
    let routing = Routing.make g in
    let n = Graph.node_count g in
    let gens = ref [] in
    let tries = ref 0 in
    while List.length !gens < flows && !tries < 500 * flows do
      incr tries;
      let src = Rng.int rng n and dst = Rng.int rng n in
      if src <> dst then
        match Routing.path routing ~src ~dst with
        | Some p when Path.length p <= max_hops ->
          gens := [ (p, 0.001) ] :: !gens
        | _ -> ()
    done;
    if !gens = [] then failwith "no routable flows in this topology";
    Stochastic.calibrate (Stochastic.make !gens) measure ~target:rate
  end

(* Open the requested sinks (empty when neither --trace nor --metrics is
   given, in which case the bundle is [Telemetry.disabled] and the run pays
   no instrumentation cost). Path "-" means stdout: the sink writes to it
   but the closer only flushes it — stdout stays with the process — and
   the human-readable output moves to stderr (see [report_channel]) so the
   machine-readable stream never interleaves with the report. Returns the
   bundle and a closer that flushes everything and closes every opened
   file. *)
let make_telemetry ~trace ~metrics =
  (match (trace, metrics) with
  | Some "-", Some "-" ->
    failwith "--trace - and --metrics - cannot share stdout"
  | _ -> ());
  let opened = ref [] in
  let open_sink path mk =
    if path = "-" then mk stdout
    else begin
      let oc = open_out path in
      opened := oc :: !opened;
      mk oc
    end
  in
  let sinks =
    List.concat
      [ (match trace with
        | None -> []
        | Some path -> [ open_sink path Sink.jsonl ]);
        (match metrics with
        | None -> []
        | Some path -> [ open_sink path Sink.csv ]) ]
  in
  match sinks with
  | [] -> (Telemetry.disabled, fun () -> ())
  | sinks ->
    let t = Telemetry.make ~sinks () in
    ( t,
      fun () ->
        (* Flush through the bundle (covers the stdout sink), then close
           only the channels this function opened. *)
        Telemetry.flush t;
        List.iter close_out !opened )

(* Where the config line and the report go: stderr when a sink claimed
   stdout, stdout otherwise. *)
let report_channel ~trace ~metrics =
  if trace = Some "-" || metrics = Some "-" then stderr else stdout

(* HIGH:LOW[:POLICY] with POLICY in {drop-newest, reject}. *)
let parse_guard s =
  let watermark what v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> failwith ("--guard: " ^ what ^ " watermark must be an integer")
  in
  let make ?policy h l =
    try Protocol.guard ?policy ~high:(watermark "high" h) ~low:(watermark "low" l) ()
    with Invalid_argument _ ->
      failwith "--guard: watermarks must satisfy 0 <= LOW < HIGH"
  in
  match String.split_on_char ':' s with
  | [ h; l ] -> make h l
  | [ h; l; policy ] ->
    let policy =
      match policy with
      | "drop-newest" -> Protocol.Drop_newest
      | "reject" -> Protocol.Reject_admission
      | other -> failwith ("--guard: unknown policy: " ^ other)
    in
    make ~policy h l
  | _ -> failwith "--guard must be HIGH:LOW or HIGH:LOW:POLICY"

(* Episodes from every --fault occurrence plus the --fault-plan file,
   merged into one plan (Plan.make re-sorts by first slot). *)
let build_plan ~fault_specs ~fault_plan =
  let from_flags =
    List.concat_map (fun s -> Plan.episodes (Plan.parse s)) fault_specs
  in
  let from_file =
    match fault_plan with
    | None -> []
    | Some file -> Plan.episodes (Plan.load file)
  in
  Plan.make (from_flags @ from_file)

(* SIGINT/SIGTERM land as {!Driver.Interrupted} inside the frame loop:
   the driver emits a final metrics snapshot through the same code path
   as periodic ones and unwinds to the telemetry flush, so an
   interrupted run leaves a coherent trace instead of a dropped tail. *)
let install_signal_handlers () =
  let raise_interrupt _ = raise Driver.Interrupted in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle raise_interrupt);
  Sys.set_signal Sys.sigint (Sys.Signal_handle raise_interrupt)

let run model_name topology algorithm_name rate epsilon frames flows adversary
    stations loss seed reps jobs trace metrics metrics_every trace_packets
    fault_specs fault_plan guard sparse tile =
  install_signal_handlers ();
  if reps < 1 then failwith "--reps must be >= 1";
  (match sparse with
  | Some eps when eps < 0. -> failwith "--sparse epsilon must be >= 0"
  | None when tile <> None -> failwith "--tile requires --sparse"
  | _ -> ());
  (match tile with
  | Some c when c <= 0. -> failwith "--tile cell must be > 0"
  | _ -> ());
  if jobs < 1 then failwith "--jobs must be >= 1";
  (* Oversubscribing domains only costs context switches; clamp to what
     the runtime says this machine runs well. Results are identical for
     every jobs value (docs/PARALLELISM.md), so clamping is invisible. *)
  let jobs = Int.min jobs (Dps_par.Par.recommended_jobs ()) in
  if reps > 1 && (fault_specs <> [] || fault_plan <> None || guard <> None)
  then failwith "--reps does not compose with --fault/--fault-plan/--guard";
  if reps > 1 && trace_packets <> None then
    failwith
      "--reps does not compose with --trace-packets (packet ids would \
       collide across replicas)";
  let spec =
    Scenario.make ?algorithm:algorithm_name ~epsilon ~stations ~loss ?sparse
      ?tile ~model:model_name ~topology ~rate ()
  in
  let built = Scenario.build ~jobs spec in
  let g = built.Scenario.graph in
  let measure = built.Scenario.measure in
  let oracle = built.Scenario.oracle in
  let tiled = built.Scenario.tiled in
  let algorithm = built.Scenario.algorithm in
  let config = built.Scenario.config in
  let max_hops = built.Scenario.max_hops in
  let topology = if built.Scenario.mac then "mac" else topology in
  let plan = build_plan ~fault_specs ~fault_plan in
  let guard = Option.map parse_guard guard in
  let rng = Rng.create ~seed () in
  let out = report_channel ~trace ~metrics in
  Printf.fprintf out
    "model=%s topology=%s m=%d algorithm=%s rate=%.4f\nframe T=%d (phase1 %d, \
     clean-up %d)\n"
    model_name topology (Measure.size measure) algorithm.Algorithm.name rate
    config.Protocol.frame config.Protocol.phase1_budget
    config.Protocol.cleanup_budget;
  Option.iter
    (fun tiled ->
      let m = Tiled.size tiled in
      Printf.fprintf out
        "sparse: epsilon=%g tiles=%d near=%d nnz=%d (dense %d) \
         max-row-bound=%.3g\n"
        (Tiled.epsilon tiled)
        (Tiling.tiles (Tiled.tiling tiled))
        (Tiled.near_radius tiled) (Tiled.nnz tiled) (m * m)
        (Tiled.max_row_bound tiled))
    tiled;
  let source =
    match adversary with
    | None ->
      Driver.Stochastic
        (build_traffic rng g measure ~flows ~rate ~max_hops
           ~mac:built.Scenario.mac)
    | Some kind ->
      let routing = Routing.make g in
      let n = Graph.node_count g in
      let paths = ref [] in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst && List.length !paths < flows then
            match Routing.path routing ~src ~dst with
            | Some p when Path.length p <= max_hops -> paths := p :: !paths
            | _ -> ()
        done
      done;
      let w = 2 * config.Protocol.frame in
      let adv =
        match kind with
        | "burst" -> Adversary.burst ~measure ~w ~rate ~paths:!paths
        | "smooth" -> Adversary.smooth ~measure ~w ~rate ~paths:!paths
        | "sawtooth" -> Adversary.sawtooth ~measure ~w ~rate ~paths:!paths
        | "single-target" -> Adversary.single_target ~measure ~w ~rate ~paths:!paths
        | "rotating" -> Adversary.rotating ~measure ~w ~rate ~paths:!paths
        | other -> failwith ("unknown adversary: " ^ other)
      in
      Driver.Adversarial adv
  in
  (match trace_packets with
  | Some k when k < 1 -> failwith "--trace-packets: K must be >= 1"
  | Some _ when trace = None ->
    failwith "--trace-packets needs --trace (there is no trace to write to)"
  | _ -> ());
  let telemetry, close_telemetry = make_telemetry ~trace ~metrics in
  if reps > 1 then begin
    (* Replicated runs over consecutive seeds: one line per replica in
       seed order, then the aggregate — the run itself and its merged
       telemetry are identical for every --jobs value. *)
    let seeds = List.init reps (fun i -> seed + i) in
    let reports =
      Fun.protect ~finally:close_telemetry (fun () ->
          Driver.run_many ~jobs ~telemetry ~metrics_every ~config ~oracle
            ~source ~seeds ~frames ())
    in
    let assess (r : Protocol.report) = Stability.assess r.Protocol.in_system in
    List.iter2
      (fun sd (r : Protocol.report) ->
        Printf.fprintf out
          "seed=%d injected=%d delivered=%d max-queue=%d verdict=%s\n" sd
          r.Protocol.injected r.Protocol.delivered r.Protocol.max_queue
          (Stability.to_string (assess r)))
      seeds reports;
    let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
    let stable =
      List.length
        (List.filter (fun r -> Stability.is_stable (assess r)) reports)
    in
    Printf.fprintf out "replicas=%d stable=%d/%d injected=%d delivered=%d\n"
      reps stable reps
      (total (fun r -> r.Protocol.injected))
      (total (fun r -> r.Protocol.delivered))
  end
  else begin
    let r, injector =
      Fun.protect ~finally:close_telemetry (fun () ->
          if Plan.is_empty plan && guard = None then
            ( Driver.run_traced ?packet_trace:trace_packets ~jobs ~telemetry
                ~metrics_every ~config ~oracle ~source ~frames ~rng (),
              None )
          else
            let r, injector =
              Driver.run_faulted_traced ?packet_trace:trace_packets ?guard
                ~jobs ~telemetry ~metrics_every ~config ~oracle ~source ~plan
                ~frames ~rng ()
            in
            (r, Some injector))
    in
    (match injector with
    | Some inj when not (Plan.is_empty plan) ->
      Printf.fprintf out
        "faults: suppressed %d (outage %d, jam %d, loss %d, degrade %d)\n"
        (Injector.suppressed inj)
        (Injector.suppressed_of inj "outage")
        (Injector.suppressed_of inj "jam")
        (Injector.suppressed_of inj "loss")
        (Injector.suppressed_of inj "degrade")
    | _ -> ());
    let ppf = Format.formatter_of_out_channel out in
    Format.fprintf ppf "@\n%a@\n%!"
      (Dps_core.Report_pp.pp ~frame:config.Protocol.frame)
      r
  end

open Cmdliner

let model =
  Arg.(
    value
    & opt string "sinr-linear"
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Interference model: sinr-linear, sinr-sqrt, sinr-pc, conflict-d2, \
           node-constraint, radio, mac, wireline.")

let topology =
  Arg.(
    value
    & opt string "grid:4x4"
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:"Topology: grid:RxC, line:N, random:N (mac model ignores this).")

let algorithm =
  Arg.(
    value
    & opt (some string) None
    & info [ "algorithm" ] ~docv:"ALGO"
        ~doc:
          "Static algorithm: delay-select, contention, \
           contention-transformed, oneshot, decay, round-robin, \
           measure-greedy. Default: model-appropriate.")

let rate =
  Arg.(
    value & opt float 0.04
    & info [ "rate" ] ~docv:"LAMBDA" ~doc:"Injection rate λ = ||W·F||_inf.")

let epsilon =
  Arg.(
    value & opt float 0.5
    & info [ "epsilon" ] ~docv:"EPS" ~doc:"Protocol headroom ε in (0, 1].")

let frames =
  Arg.(
    value & opt int 150
    & info [ "frames" ] ~docv:"N" ~doc:"Number of time frames to simulate.")

let flows =
  Arg.(
    value & opt int 10
    & info [ "flows" ] ~docv:"N" ~doc:"Number of source-destination flows.")

let adversary =
  Arg.(
    value
    & opt (some string) None
    & info [ "adversary" ] ~docv:"KIND"
        ~doc:
          "Replace stochastic traffic by a window adversary: burst, smooth, \
           sawtooth, single-target, rotating.")

let stations =
  Arg.(
    value & opt int 8
    & info [ "stations" ] ~docv:"N" ~doc:"Stations for the mac model.")

let loss =
  Arg.(
    value & opt float 0.
    & info [ "loss" ]
        ~docv:"P"
        ~doc:"Per-transmission loss probability (unreliable networks).")

let seed =
  Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let reps =
  Arg.(
    value & opt int 1
    & info [ "reps" ] ~docv:"R"
        ~doc:
          "Replicate the run over $(docv) consecutive seeds (SEED ... \
           SEED+R-1): one report line per replica plus an aggregate. Does \
           not compose with $(b,--fault), $(b,--guard) or \
           $(b,--trace-packets). See docs/PARALLELISM.md.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Parallelism on $(docv) domains (clamped to the machine's \
           recommended domain count): $(b,--reps) replicas fan out one per \
           domain, and a single $(b,--sparse) run evaluates interference \
           tile-parallel inside each slot. Results and telemetry are \
           identical for every $(docv) — parallelism only changes the wall \
           clock. Rejected when $(docv) < 1.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL telemetry trace (spans, events and metric \
           snapshots) to $(docv). Schema: docs/OBSERVABILITY.md.")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write metric snapshots as CSV (frame,metric,labels,kind,value) \
           to $(docv).")

let metrics_every =
  Arg.(
    value & opt int 10
    & info [ "metrics-every" ] ~docv:"N"
        ~doc:
          "Emit a metrics snapshot every $(docv) frames (0 = final snapshot \
           only). Only meaningful with $(b,--trace) or $(b,--metrics).")

let trace_packets =
  Arg.(
    value
    & opt ~vopt:(Some 1) (some int) None
    & info [ "trace-packets" ] ~docv:"K"
        ~doc:
          "Add per-packet lifecycle events (packet.inject, packet.hop, \
           packet.deliver, packet.shed) to the $(b,--trace) stream, \
           head-sampled 1-in-$(docv) by packet id (default 1 = every \
           packet). Sampling is deterministic and sticky per packet, so \
           sampled lifecycles are complete. Requires $(b,--trace).")

let fault =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject a fault episode: KIND:START-END with KIND one of outage, \
           jam, loss, degrade, and an inclusive slot interval. Optional \
           fields narrow the target and set parameters: links=ID+ID..., \
           near=CENTER~THRESH, p=P (loss), gamma=G (degrade). Repeatable; \
           each occurrence may also hold a comma-separated list. Grammar \
           and semantics: docs/FAULTS.md.")

let fault_plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"FILE"
        ~doc:
          "Load fault episodes from $(docv): one $(b,--fault) spec per \
           line, $(b,#) comments. Merged with any $(b,--fault) flags.")

let guard =
  Arg.(
    value
    & opt (some string) None
    & info [ "guard" ] ~docv:"HIGH:LOW[:POLICY]"
        ~doc:
          "Enable the overload guard with hysteresis watermarks on the \
           failed-buffer potential: shedding starts when it reaches HIGH \
           and stops once it drains to LOW. POLICY is drop-newest \
           (default) or reject. See DESIGN.md §9.")

let sparse =
  Arg.(
    value
    & opt (some float) None
    & info [ "sparse" ] ~docv:"EPS"
        ~doc:
          "Build the interference matrix through the ε-sparsified tiled \
           engine instead of the dense O(m²) scan (sinr-linear only): \
           entries whose summed contribution to any row of W·R is provably \
           below $(docv)·‖R‖∞ are dropped, the per-row dropped mass is \
           recorded, and a summary line is printed. $(docv) = 0 reproduces \
           the dense matrix exactly. See docs/SCALING.md.")

let tile =
  Arg.(
    value
    & opt (some float) None
    & info [ "tile" ] ~docv:"CELL"
        ~doc:
          "Tile side for $(b,--sparse) (default: sized for a mean \
           occupancy of ~8 links per tile). Changing it moves entries \
           between the exact near field and the bounded far field; the \
           result differs only within the $(b,--sparse) bound.")

let run_safely model_name topology algorithm_name rate epsilon frames flows
    adversary stations loss seed reps jobs trace metrics metrics_every
    trace_packets fault_specs fault_plan guard sparse tile =
  try
    run model_name topology algorithm_name rate epsilon frames flows adversary
      stations loss seed reps jobs trace metrics metrics_every trace_packets
      fault_specs fault_plan guard sparse tile
  with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "dps_run: %s\n" msg;
    exit 1
  | Driver.Interrupted ->
    (* Telemetry already holds the final snapshot (the driver emits it
       before unwinding, and [Fun.protect] flushed the sinks). 130 =
       128 + SIGINT, the conventional interrupted-run exit status. *)
    Printf.eprintf "dps_run: interrupted; telemetry flushed\n";
    exit 130

let cmd =
  let doc = "dynamic packet scheduling in wireless networks (PODC 2012)" in
  let man =
    [ `S Manpage.s_examples;
      `P "A small SINR run on the default 4x4 grid:";
      `Pre "  dps_run --model sinr-linear --topology grid:4x4 --rate 0.04";
      `P "Decay on a shared MAC channel:";
      `Pre "  dps_run --model mac --algorithm decay --stations 8 --rate 0.15";
      `P "A burst adversary on a wireline path:";
      `Pre
        "  dps_run --model wireline --topology line:8 --rate 0.3 --adversary \
         burst";
      `P "Record a telemetry trace and periodic metric snapshots:";
      `Pre
        "  dps_run --model sinr-linear --rate 0.04 --trace t.jsonl --metrics \
         m.csv --metrics-every 5";
      `P
        "Trace every packet's lifecycle and pipe it straight into the \
         analyzer (the report moves to stderr):";
      `Pre
        "  dps_run --model wireline --topology line:8 --rate 0.3 --trace - \
         --trace-packets | dps_trace summary -";
      `P
        "Build W through the ε-sparsified tiled engine instead of the \
         dense O(m²) scan (docs/SCALING.md):";
      `Pre
        "  dps_run --model sinr-linear --topology grid:8x8 --rate 0.04 \
         --sparse 0.1";
      `P "A jamming burst absorbed by the overload guard:";
      `Pre
        "  dps_run --model wireline --topology line:8 --rate 0.3 --fault \
         jam:2000-4000 --guard 60:10";
      `P
        "Eight replicated runs over consecutive seeds, four domains in \
         parallel (same results as --jobs 1, sooner):";
      `Pre
        "  dps_run --model mac --algorithm decay --stations 8 --rate 0.15 \
         --reps 8 --jobs 4";
      `S Manpage.s_see_also;
      `P
        "docs/CLI.md (full flag reference with one example per interference \
         model); docs/OBSERVABILITY.md (trace schema and metric catalogue)."
    ]
  in
  Cmd.v
    (Cmd.info "dps_run" ~doc ~man)
    Term.(
      const run_safely $ model $ topology $ algorithm $ rate $ epsilon $ frames
      $ flows $ adversary $ stations $ loss $ seed $ reps $ jobs $ trace
      $ metrics $ metrics_every $ trace_packets $ fault $ fault_plan $ guard
      $ sparse $ tile)

let () = exit (Cmd.eval cmd)
