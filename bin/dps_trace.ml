(* dps_trace — offline analyzer for dps_run JSONL traces.

   Subcommands:
     check    FILE       schema validation (exit 1 on the first bad line)
     summary  FILE       headline numbers for the whole trace
     packet   ID FILE    one packet's lifecycle, event by event
     latency  FILE       latency decomposition (--by hop|phase|episode)
     witness  THM FILE   theorem witnesses: thm3 | thm8 | thm11

   FILE is "-" for stdin, which composes with dps_run --trace -:
     dps_run --model wireline --rate 0.3 --trace - --trace-packets \
       | dps_trace summary -

   Output is a human table by default, one JSON object with --json.
   Schema: docs/OBSERVABILITY.md; reference: docs/CLI.md.
*)

module Json = Dps_trace.Json
module Line = Dps_trace.Line
module Reader = Dps_trace.Reader
module Lifecycle = Dps_trace.Lifecycle
module Analyze = Dps_trace.Analyze
module Witness = Dps_trace.Witness
module Stability = Dps_core.Stability

(* Deterministic float rendering, shared by tables and JSON so golden
   outputs never depend on locale or platform. *)
let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%d" (int_of_float f)
  else Printf.sprintf "%.3f" f

let jnum f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let jstr s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let jbool b = if b then "true" else "false"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

let jopt f = function Some v -> f v | None -> "null"

let dist_json (d : Analyze.dist) =
  jobj
    [ ("n", string_of_int d.Analyze.n);
      ("mean", jnum d.Analyze.mean);
      ("p50", jnum d.Analyze.p50);
      ("p90", jnum d.Analyze.p90);
      ("max", jnum d.Analyze.dmax) ]

let dist_line (d : Analyze.dist) =
  Printf.sprintf "n=%d mean=%s p50=%s p90=%s max=%s" d.Analyze.n
    (fnum d.Analyze.mean) (fnum d.Analyze.p50) (fnum d.Analyze.p90)
    (fnum d.Analyze.dmax)

let load path =
  Reader.with_input path (fun ic ->
      let b = Lifecycle.builder () in
      (try
         Reader.fold_exn ic ~init:() ~f:(fun () ~lineno:_ line ->
             Lifecycle.add b line)
       with
      | Reader.Bad_line (n, msg) ->
        failwith (Printf.sprintf "%s:%d: %s" path n msg)
      | Json.Error msg -> failwith (path ^ ": " ^ msg));
      Lifecycle.finish b)

(* ------------------------------------------------------------- check *)

let run_check path json =
  let ok, versions =
    Reader.with_input path (fun ic ->
        Reader.fold ic ~init:(0, []) ~f:(fun (n, vs) ~lineno -> function
          | Ok line ->
            ( n + 1,
              if List.mem line.Line.version vs then vs
              else line.Line.version :: vs )
          | Error msg ->
            failwith (Printf.sprintf "%s:%d: %s" path lineno msg)))
  in
  let versions = List.sort compare versions in
  if json then
    print_endline
      (jobj
         [ ("lines", string_of_int ok);
           ("versions", jarr (List.map string_of_int versions));
           ("ok", "true") ])
  else
    Printf.printf "%s: %d lines ok (schema version%s %s)\n" path ok
      (if List.length versions = 1 then "" else "s")
      (String.concat "," (List.map string_of_int versions))

(* ----------------------------------------------------------- summary *)

let run_summary path json =
  let run = load path in
  let s = Analyze.summary run in
  if json then
    print_endline
      (jobj
         [ ("events", string_of_int s.Analyze.s_events);
           ("frames", string_of_int s.Analyze.s_frames);
           ( "frame_length",
             jopt string_of_int s.Analyze.s_frame_length );
           ("packets", string_of_int s.Analyze.s_packets);
           ("injected", string_of_int s.Analyze.s_injected);
           ("delivered", string_of_int s.Analyze.s_delivered);
           ("shed", string_of_int s.Analyze.s_shed);
           ("in_flight", string_of_int s.Analyze.s_in_flight);
           ("hop_events", string_of_int s.Analyze.s_hop_events);
           ("hop_failures", string_of_int s.Analyze.s_hop_failures);
           ("episodes", string_of_int s.Analyze.s_episodes);
           ("latency", jopt dist_json s.Analyze.s_latency) ])
  else begin
    Printf.printf "trace: %d lines, %d frames%s\n" s.Analyze.s_events
      s.Analyze.s_frames
      (match s.Analyze.s_frame_length with
      | Some t -> Printf.sprintf " (T=%d slots)" t
      | None -> "");
    Printf.printf "packets: %d traced, %d injected, %d delivered, %d shed, %d in flight\n"
      s.Analyze.s_packets s.Analyze.s_injected s.Analyze.s_delivered
      s.Analyze.s_shed s.Analyze.s_in_flight;
    Printf.printf "hops: %d attempts, %d failures\n" s.Analyze.s_hop_events
      s.Analyze.s_hop_failures;
    Printf.printf "episodes: %d\n" s.Analyze.s_episodes;
    match s.Analyze.s_latency with
    | Some d -> Printf.printf "latency (slots): %s\n" (dist_line d)
    | None -> Printf.printf "latency (slots): no delivered packet traced\n"
  end

(* ------------------------------------------------------------ packet *)

let run_packet id path json =
  let run = load path in
  match Analyze.packet run id with
  | None ->
    Printf.eprintf
      "dps_trace: packet %d is not in the trace (not sampled, or outside \
       the run)\n"
      id;
    exit 1
  | Some p ->
    if json then begin
      let inject_json (i : Lifecycle.inject) =
        jobj
          [ ("frame", string_of_int i.Lifecycle.inj_frame);
            ("slot", string_of_int i.Lifecycle.inj_slot);
            ("link", string_of_int i.Lifecycle.inj_link);
            ("d", string_of_int i.Lifecycle.inj_d);
            ("delay", string_of_int i.Lifecycle.inj_delay) ]
      in
      let shed_json (s : Lifecycle.shed) =
        jobj
          [ ("frame", string_of_int s.Lifecycle.shed_frame);
            ("slot", string_of_int s.Lifecycle.shed_slot);
            ("d", string_of_int s.Lifecycle.shed_d);
            ("policy", jstr s.Lifecycle.shed_policy) ]
      in
      let hop_json (h : Lifecycle.hop) =
        jobj
          [ ("frame", string_of_int h.Lifecycle.hop_frame);
            ("slot", string_of_int h.Lifecycle.hop_slot);
            ("hop", string_of_int h.Lifecycle.hop_index);
            ("link", string_of_int h.Lifecycle.hop_link);
            ("phase", jstr (Lifecycle.phase_name h.Lifecycle.hop_phase));
            ("ok", jbool h.Lifecycle.hop_ok) ]
      in
      let deliver_json (d : Lifecycle.deliver) =
        jobj
          [ ("frame", string_of_int d.Lifecycle.del_frame);
            ("slot", string_of_int d.Lifecycle.del_slot);
            ("latency", string_of_int d.Lifecycle.del_latency);
            ("failed", jbool d.Lifecycle.del_failed) ]
      in
      print_endline
        (jobj
           [ ("id", string_of_int p.Lifecycle.id);
             ("inject", jopt inject_json p.Lifecycle.inject);
             ("shed", jopt shed_json p.Lifecycle.shed);
             ("hops", jarr (List.map hop_json p.Lifecycle.hops));
             ("deliver", jopt deliver_json p.Lifecycle.deliver) ])
    end
    else begin
      Printf.printf "packet %d\n" p.Lifecycle.id;
      (match p.Lifecycle.inject with
      | Some i ->
        Printf.printf "  inject   frame %-4d slot %-6d link %d d=%d delay=%d\n"
          i.Lifecycle.inj_frame i.Lifecycle.inj_slot i.Lifecycle.inj_link
          i.Lifecycle.inj_d i.Lifecycle.inj_delay
      | None -> ());
      (match p.Lifecycle.shed with
      | Some s ->
        Printf.printf "  shed     frame %-4d slot %-6d d=%d policy=%s\n"
          s.Lifecycle.shed_frame s.Lifecycle.shed_slot s.Lifecycle.shed_d
          s.Lifecycle.shed_policy
      | None -> ());
      List.iter
        (fun (h : Lifecycle.hop) ->
          Printf.printf "  hop %-4d frame %-4d slot %-6d link %d %-7s %s\n"
            h.Lifecycle.hop_index h.Lifecycle.hop_frame h.Lifecycle.hop_slot
            h.Lifecycle.hop_link
            (Lifecycle.phase_name h.Lifecycle.hop_phase)
            (if h.Lifecycle.hop_ok then "ok" else "failed"))
        p.Lifecycle.hops;
      match p.Lifecycle.deliver with
      | Some d ->
        Printf.printf "  deliver  frame %-4d slot %-6d latency %d%s\n"
          d.Lifecycle.del_frame d.Lifecycle.del_slot d.Lifecycle.del_latency
          (if d.Lifecycle.del_failed then " (via clean-up)" else "")
      | None -> Printf.printf "  (not delivered within the trace)\n"
    end

(* ----------------------------------------------------------- latency *)

let run_latency by path json =
  let run = load path in
  match by with
  | "phase" ->
    let pb = Analyze.by_phase run in
    if json then
      print_endline
        (jobj
           [ ("by", jstr "phase");
             ("packets", string_of_int pb.Analyze.pb_packets);
             ("queue", jopt dist_json pb.Analyze.pb_queue);
             ("phase1", jopt dist_json pb.Analyze.pb_phase1);
             ("cleanup", jopt dist_json pb.Analyze.pb_cleanup);
             ("queue_share", jnum pb.Analyze.pb_queue_share);
             ("phase1_share", jnum pb.Analyze.pb_phase1_share);
             ("cleanup_share", jnum pb.Analyze.pb_cleanup_share) ])
    else begin
      Printf.printf "latency by phase over %d complete packets\n"
        pb.Analyze.pb_packets;
      let row name d share =
        Printf.printf "  %-8s %-46s share %5.1f%%\n" name
          (match d with
          | Some d -> dist_line d
          | None -> "-")
          (100. *. share)
      in
      row "queue" pb.Analyze.pb_queue pb.Analyze.pb_queue_share;
      row "phase1" pb.Analyze.pb_phase1 pb.Analyze.pb_phase1_share;
      row "cleanup" pb.Analyze.pb_cleanup pb.Analyze.pb_cleanup_share
    end
  | "hop" ->
    let rows = Analyze.by_hop run in
    if json then
      print_endline
        (jobj
           [ ("by", jstr "hop");
             ( "hops",
               jarr
                 (List.map
                    (fun (i, d) ->
                      jobj
                        [ ("hop", string_of_int i); ("slots", dist_json d) ])
                    rows) ) ])
    else begin
      Printf.printf "slots to complete each hop (failed attempts included)\n";
      List.iter
        (fun (i, d) -> Printf.printf "  hop %-3d %s\n" i (dist_line d))
        rows;
      if rows = [] then Printf.printf "  (no successful hop traced)\n"
    end
  | "episode" ->
    let rows = Analyze.by_episode run in
    if json then
      print_endline
        (jobj
           [ ("by", jstr "episode");
             ( "episodes",
               jarr
                 (List.map
                    (fun (e : Analyze.episode_impact) ->
                      let ep = e.Analyze.ei_episode in
                      jobj
                        [ ("kind", jstr ep.Lifecycle.ep_kind);
                          ("links", string_of_int ep.Lifecycle.ep_links);
                          ( "first_slot",
                            string_of_int ep.Lifecycle.ep_first_slot );
                          ( "last_slot",
                            string_of_int ep.Lifecycle.ep_last_slot );
                          ( "suppressed",
                            jopt string_of_int ep.Lifecycle.ep_suppressed );
                          ( "overlapping",
                            jopt dist_json e.Analyze.ei_overlapping );
                          ("baseline", jopt dist_json e.Analyze.ei_baseline);
                          ("delta", jopt jnum e.Analyze.ei_delta);
                          ( "drain_frames",
                            jopt string_of_int e.Analyze.ei_drain_frames ) ])
                    rows) ) ])
    else begin
      Printf.printf "latency impact per fault episode\n";
      List.iter
        (fun (e : Analyze.episode_impact) ->
          let ep = e.Analyze.ei_episode in
          Printf.printf "  %s slots %d-%d (%d links)%s\n"
            ep.Lifecycle.ep_kind ep.Lifecycle.ep_first_slot
            ep.Lifecycle.ep_last_slot ep.Lifecycle.ep_links
            (match ep.Lifecycle.ep_suppressed with
            | Some s -> Printf.sprintf " suppressed %d" s
            | None -> " (open at end of trace)");
          (match e.Analyze.ei_overlapping with
          | Some d -> Printf.printf "    overlapping: %s\n" (dist_line d)
          | None -> Printf.printf "    overlapping: none delivered\n");
          (match e.Analyze.ei_baseline with
          | Some d -> Printf.printf "    baseline:    %s\n" (dist_line d)
          | None -> ());
          (match e.Analyze.ei_delta with
          | Some d -> Printf.printf "    delta mean:  %s slots\n" (fnum d)
          | None -> ());
          match e.Analyze.ei_drain_frames with
          | Some d -> Printf.printf "    drain:       %d frames\n" d
          | None -> ())
        rows;
      if rows = [] then Printf.printf "  (no fault episode in the trace)\n"
    end
  | other -> failwith ("--by must be hop, phase or episode, not " ^ other)

(* ----------------------------------------------------------- witness *)

let run_witness which threshold path json =
  let run = load path in
  let fail msg =
    Printf.eprintf "dps_trace: witness %s: %s\n" which msg;
    exit 1
  in
  match which with
  | "thm8" -> (
    match Witness.thm8 ?threshold run with
    | Error msg -> fail msg
    | Ok w ->
      if json then
        print_endline
          (jobj
             [ ("witness", jstr "thm8");
               ("frame_length", string_of_int w.Witness.t8_frame_length);
               ("threshold", jnum w.Witness.t8_threshold);
               ("packets", string_of_int w.Witness.t8_n);
               ("ratio", dist_json w.Witness.t8_ratio);
               ( "outliers",
                 jarr
                   (List.map
                      (fun (o : Witness.outlier) ->
                        jobj
                          [ ("id", string_of_int o.Witness.o_id);
                            ("d", string_of_int o.Witness.o_d);
                            ("latency", string_of_int o.Witness.o_latency);
                            ("ratio", jnum o.Witness.o_ratio);
                            ("failed", jbool o.Witness.o_failed) ])
                      w.Witness.t8_outliers) );
               ("unexplained", string_of_int w.Witness.t8_unexplained);
               ("consistent", jbool w.Witness.t8_consistent) ])
      else begin
        Printf.printf
          "witness thm8: latency vs (d+delay)*T budget (T=%d, c=%s)\n"
          w.Witness.t8_frame_length
          (fnum w.Witness.t8_threshold);
        Printf.printf "packets: %d   ratio %s\n" w.Witness.t8_n
          (dist_line w.Witness.t8_ratio);
        Printf.printf "outliers above c: %d (unexplained %d)\n"
          (List.length w.Witness.t8_outliers)
          w.Witness.t8_unexplained;
        List.iter
          (fun (o : Witness.outlier) ->
            Printf.printf "  packet %-6d d=%d latency=%-6d ratio=%s%s\n"
              o.Witness.o_id o.Witness.o_d o.Witness.o_latency
              (fnum o.Witness.o_ratio)
              (if o.Witness.o_failed then " (failed: clean-up path)" else ""))
          w.Witness.t8_outliers;
        Printf.printf "verdict: %s\n"
          (if w.Witness.t8_consistent then
             "CONSISTENT (p50 <= 2 and no unexplained outliers)"
           else "INCONSISTENT")
      end;
      if not w.Witness.t8_consistent then exit 1)
  | "thm3" -> (
    match Witness.thm3 run with
    | Error msg -> fail msg
    | Ok w ->
      if json then
        print_endline
          (jobj
             [ ("witness", jstr "thm3");
               ("frames", string_of_int w.Witness.t3_frames);
               ( "verdict",
                 jstr (Stability.to_string w.Witness.t3_verdict) );
               ("growth_per_frame", jnum w.Witness.t3_growth);
               ("max_in_system", string_of_int w.Witness.t3_max_in_system);
               ("max_potential", string_of_int w.Witness.t3_max_potential);
               ( "final_potential",
                 string_of_int w.Witness.t3_final_potential ) ])
      else begin
        Printf.printf
          "witness thm3: stability recomputed from the trace (%d frames)\n"
          w.Witness.t3_frames;
        Printf.printf "in_system: max %d, tail growth %s packets/frame\n"
          w.Witness.t3_max_in_system (fnum w.Witness.t3_growth);
        Printf.printf "potential: max %d, final %d\n"
          w.Witness.t3_max_potential w.Witness.t3_final_potential;
        Printf.printf "verdict: %s\n"
          (Stability.to_string w.Witness.t3_verdict)
      end)
  | "thm11" -> (
    match Witness.thm11 run with
    | Error msg -> fail msg
    | Ok w ->
      if json then
        print_endline
          (jobj
             [ ("witness", jstr "thm11");
               ("packets", string_of_int w.Witness.t11_n);
               ("delayed", string_of_int w.Witness.t11_delayed);
               ("max_delay", string_of_int w.Witness.t11_max_delay);
               ("mean_delay", jnum w.Witness.t11_mean_delay);
               ("distinct_delays", string_of_int w.Witness.t11_distinct);
               ("coverage", jnum w.Witness.t11_coverage);
               ("adversarial", jbool w.Witness.t11_adversarial) ])
      else begin
        Printf.printf
          "witness thm11: random initial delays over %d injected packets\n"
          w.Witness.t11_n;
        if not w.Witness.t11_adversarial then
          Printf.printf
            "all delays are 0 — not an adversarial run (the wrapper only \
             delays window-adversary traffic)\n"
        else begin
          Printf.printf
            "delayed: %d/%d, delay mean %s max %d frames\n"
            w.Witness.t11_delayed w.Witness.t11_n
            (fnum w.Witness.t11_mean_delay)
            w.Witness.t11_max_delay;
          Printf.printf "spread: %d distinct values, coverage %s of [0,%d]\n"
            w.Witness.t11_distinct
            (fnum w.Witness.t11_coverage)
            w.Witness.t11_max_delay
        end
      end)
  | other -> failwith ("unknown witness: " ^ other ^ " (thm3|thm8|thm11)")

(* --------------------------------------------------------- cmdliner *)

open Cmdliner

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit one JSON object instead of a human table.")

let file_arg =
  Arg.(
    value
    & pos ~rev:true 0 string "-"
    & info [] ~docv:"FILE"
        ~doc:"JSONL trace file, or - for stdin (default).")

let wrap f =
  try f () with
  | Failure msg | Sys_error msg ->
    Printf.eprintf "dps_trace: %s\n" msg;
    exit 1

let check_cmd =
  let doc = "validate every line against the trace schema" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun path json -> wrap (fun () -> run_check path json))
      $ file_arg $ json_flag)

let summary_cmd =
  let doc = "headline numbers for the whole trace" in
  Cmd.v
    (Cmd.info "summary" ~doc)
    Term.(
      const (fun path json -> wrap (fun () -> run_summary path json))
      $ file_arg $ json_flag)

let packet_cmd =
  let doc = "one packet's lifecycle, event by event" in
  let id =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"ID" ~doc:"Packet id (see packet.inject events).")
  in
  Cmd.v
    (Cmd.info "packet" ~doc)
    Term.(
      const (fun id path json -> wrap (fun () -> run_packet id path json))
      $ id $ file_arg $ json_flag)

let latency_cmd =
  let doc = "latency decomposition" in
  let by =
    Arg.(
      value & opt string "phase"
      & info [ "by" ] ~docv:"DIM"
          ~doc:"Decomposition dimension: hop, phase (default) or episode.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc)
    Term.(
      const (fun by path json -> wrap (fun () -> run_latency by path json))
      $ by $ file_arg $ json_flag)

let witness_cmd =
  let doc = "recompute a theorem's evidence from the trace alone" in
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"THM" ~doc:"Which witness: thm3, thm8 or thm11.")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"C"
          ~doc:
            "Outlier cutoff for thm8: flag packets with latency above \
             C*(d+delay)*T (default 3.0).")
  in
  Cmd.v
    (Cmd.info "witness" ~doc)
    Term.(
      const (fun which threshold path json ->
          wrap (fun () -> run_witness which threshold path json))
      $ which $ threshold $ file_arg $ json_flag)

let cmd =
  let doc = "offline analyzer for dps_run telemetry traces" in
  let man =
    [ `S Manpage.s_examples;
      `P "Check and summarise a recorded trace:";
      `Pre "  dps_trace check t.jsonl && dps_trace summary t.jsonl";
      `P "Stream from a live run:";
      `Pre
        "  dps_run --model wireline --topology line:8 --rate 0.3 --trace - \
         --trace-packets | dps_trace summary -";
      `P "Follow one packet and decompose the tail:";
      `Pre "  dps_trace packet 42 t.jsonl\n  dps_trace latency --by hop t.jsonl";
      `P "Recompute the paper's guarantees from the file alone:";
      `Pre "  dps_trace witness thm8 t.jsonl\n  dps_trace witness thm3 --json t.jsonl";
      `S Manpage.s_see_also;
      `P "docs/CLI.md; docs/OBSERVABILITY.md (schema v2, packet events)."
    ]
  in
  Cmd.group
    (Cmd.info "dps_trace" ~doc ~man)
    [ check_cmd; summary_cmd; packet_cmd; latency_cmd; witness_cmd ]

let () = exit (Cmd.eval cmd)
