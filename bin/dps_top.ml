(* dps_top — live terminal monitor for the dps_serve daemon.

   Two sources for the metrics stream:

   - --socket PATH: connect to a running daemon, subscribe to its
     metrics push, and drive its logical clock with step commands (the
     daemon serves one client at a time and only advances on step, so
     the monitor doubles as the pacer).
   - FILE (or '-' for stdin): replay a captured stream — subscribed
     metrics lines, or any reply stream whose status replies embed a
     metrics object.

   Output: a refreshing per-class / per-tenant table (default), --json
   (one canonical JSON line per refresh), or --prom (Prometheus text
   exposition). --once renders a single snapshot and exits.

   Metric catalogue and stream schema: docs/OBSERVABILITY.md; wire
   protocol: docs/SERVING.md. *)

module Json = Dps_trace.Json
module Metrics = Dps_telemetry.Metrics
module Snapshot = Dps_telemetry.Snapshot
module Classes = Dps_serve.Classes
module Wire = Dps_serve.Wire

(* ------------------------------------------------- stream -> snapshot *)

let is_metrics j =
  match Json.member "type" j with
  | Some (Json.Str "metrics") -> true
  | _ -> false

(* A metrics object from one stream line: either a standalone push line
   or the ["metrics"] field a status reply embeds. *)
let metrics_of_line j =
  if is_metrics j then Some j
  else
    match Json.member "metrics" j with
    | Some m when is_metrics m -> Some m
    | _ -> None

let snapshot_of_metrics j =
  let row r =
    let labels =
      match Json.member "labels" r with
      | Some (Json.Obj kvs) ->
        List.map (fun (k, v) -> (k, Json.to_string v)) kvs
      | _ -> []
    in
    { Metrics.name = Json.string_field "name" r;
      labels = List.sort compare labels;
      kind = Json.string_field "kind" r;
      value = Json.to_float (Json.field "value" r) }
  in
  Snapshot.of_rows
    ~frame:(Json.int_field "frame" j)
    (List.map row (Json.to_list (Json.field "rows" j)))

(* ---------------------------------------------------------- view model *)

type class_view = {
  cname : string;
  c_admitted : int;
  c_denied : int;
  c_shed : int;
  c_violations : int;
  c_burn : float;
  c_shed_rate : float;
  c_deny_rate : float;
  c_p99 : float option;
}

type tenant_view = {
  tname : string;
  tclass : string;
  t_admitted : int;
  t_delivered : int;
  t_shed : int;
  t_rejected : int;
  t_delta : int;  (* admitted since the previous refresh *)
}

type view = {
  v_frame : int;
  v_jain : float;
  v_pending : int;
  v_queue_wm : int;
  v_pending_wm : int;
  v_classes : class_view list;
  v_tenants : tenant_view list;
  v_hidden : int;  (* tenants cut by --top *)
}

let geti snap ~name ~labels ~kind =
  match Snapshot.find snap ~name ~labels ~kind with
  | Some v -> int_of_float v
  | None -> 0

let getf snap ~name ~labels ~kind =
  Option.value ~default:0. (Snapshot.find snap ~name ~labels ~kind)

let class_view snap k =
  let cname = Classes.to_string k in
  let labels = [ ("class", cname) ] in
  { cname;
    c_admitted =
      geti snap ~name:"serve.admitted.packets" ~labels ~kind:"counter";
    c_denied = geti snap ~name:"serve.deny.packets" ~labels ~kind:"counter";
    c_shed = geti snap ~name:"serve.shed.packets" ~labels ~kind:"counter";
    c_violations =
      geti snap ~name:"serve.budget.violations" ~labels ~kind:"counter";
    c_burn = getf snap ~name:"serve.budget.burn" ~labels ~kind:"gauge";
    c_shed_rate = getf snap ~name:"serve.shed.rate" ~labels ~kind:"gauge";
    c_deny_rate = getf snap ~name:"serve.deny.rate" ~labels ~kind:"gauge";
    c_p99 = Snapshot.find snap ~name:"serve.latency.slots" ~labels ~kind:"p99"
  }

(* Tenants are discovered from the per-tenant admission counters: one
   ["serve.admitted"] row per attached tenant, class riding along as a
   label. *)
let tenant_views ?prev snap =
  let delta_snap = Option.map (fun base -> Snapshot.diff ~base snap) prev in
  List.filter_map
    (fun (r : Metrics.row) ->
      if r.Metrics.name <> "serve.admitted" || r.Metrics.kind <> "counter"
      then None
      else
        match
          ( List.assoc_opt "tenant" r.Metrics.labels,
            List.assoc_opt "class" r.Metrics.labels )
        with
        | Some tname, Some tclass ->
          let labels = [ ("class", tclass); ("tenant", tname) ] in
          Some
            { tname;
              tclass;
              t_admitted = int_of_float r.Metrics.value;
              t_delivered =
                geti snap ~name:"serve.delivered" ~labels ~kind:"counter";
              t_shed = geti snap ~name:"serve.shed" ~labels ~kind:"counter";
              t_rejected =
                geti snap ~name:"serve.rejected.quota" ~labels ~kind:"counter";
              t_delta =
                (match delta_snap with
                | None -> 0
                | Some d ->
                  geti d ~name:"serve.admitted" ~labels ~kind:"counter") }
        | _ -> None)
    (Snapshot.rows snap)

(* Worst first: most traffic lost (shed + quota-rejected), ties broken
   by admitted volume then name — the tenants an operator should look
   at are at the top of the table. *)
let worst_first a b =
  match compare (b.t_shed + b.t_rejected) (a.t_shed + a.t_rejected) with
  | 0 -> (
    match compare b.t_admitted a.t_admitted with
    | 0 -> compare a.tname b.tname
    | c -> c)
  | c -> c

let view ?prev ~top snap =
  let tenants = List.sort worst_first (tenant_views ?prev snap) in
  let shown, hidden =
    if top > 0 && List.length tenants > top then
      (List.filteri (fun i _ -> i < top) tenants, List.length tenants - top)
    else (tenants, 0)
  in
  { v_frame = Snapshot.frame snap;
    v_jain = getf snap ~name:"serve.fairness.jain" ~labels:[] ~kind:"gauge";
    v_pending = geti snap ~name:"serve.pending" ~labels:[] ~kind:"gauge";
    v_queue_wm =
      geti snap ~name:"serve.queue.watermark" ~labels:[] ~kind:"gauge";
    v_pending_wm =
      geti snap ~name:"serve.pending.watermark" ~labels:[] ~kind:"gauge";
    (* URLLC on top: reverse of shed-priority order. *)
    v_classes = List.rev_map (class_view snap) Classes.all;
    v_tenants = shown;
    v_hidden = hidden }

(* ------------------------------------------------------------ renderers *)

let render_table v =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "dps_top  frame %-8d jain %.3f  pending %d  queue-wm %d  pending-wm %d\n"
    v.v_frame v.v_jain v.v_pending v.v_queue_wm v.v_pending_wm;
  Printf.bprintf b "\n%-6s %8s %7s %7s %6s %6s %6s %6s %8s\n" "CLASS" "ADMIT"
    "DENY" "SHED" "VIOL" "BURN" "SHED%" "DENY%" "P99";
  List.iter
    (fun c ->
      Printf.bprintf b "%-6s %8d %7d %7d %6d %6.2f %6.1f %6.1f %8s\n" c.cname
        c.c_admitted c.c_denied c.c_shed c.c_violations c.c_burn
        (100. *. c.c_shed_rate)
        (100. *. c.c_deny_rate)
        (match c.c_p99 with
        | None -> "-"
        | Some p -> Printf.sprintf "%.1f" p))
    v.v_classes;
  Printf.bprintf b "\n%-20s %-6s %8s %8s %7s %7s %7s\n" "TENANT" "CLASS"
    "ADMIT" "DLVR" "SHED" "REJ" "+ADM";
  List.iter
    (fun t ->
      Printf.bprintf b "%-20s %-6s %8d %8d %7d %7d %7d\n" t.tname t.tclass
        t.t_admitted t.t_delivered t.t_shed t.t_rejected t.t_delta)
    v.v_tenants;
  if v.v_hidden > 0 then
    Printf.bprintf b "... %d more tenant(s); raise --top to see them\n"
      v.v_hidden;
  Buffer.contents b

(* Canonical JSON rendering via the wire encoders: same floats, same
   escaping as the daemon's own replies, so the output is byte-stable
   and golden-pinnable. *)
let render_json v =
  let class_json c =
    Wire.obj
      ([ ("class", Wire.Str c.cname);
         ("admitted", Wire.Int c.c_admitted);
         ("denied", Wire.Int c.c_denied);
         ("shed", Wire.Int c.c_shed);
         ("violations", Wire.Int c.c_violations);
         ("burn", Wire.Float c.c_burn);
         ("shed_rate", Wire.Float c.c_shed_rate);
         ("deny_rate", Wire.Float c.c_deny_rate) ]
      @ match c.c_p99 with
        | None -> []
        | Some p -> [ ("p99", Wire.Float p) ])
  in
  let tenant_json t =
    Wire.obj
      [ ("tenant", Wire.Str t.tname);
        ("class", Wire.Str t.tclass);
        ("admitted", Wire.Int t.t_admitted);
        ("delivered", Wire.Int t.t_delivered);
        ("shed", Wire.Int t.t_shed);
        ("rejected", Wire.Int t.t_rejected);
        ("delta_admitted", Wire.Int t.t_delta) ]
  in
  Wire.obj
    [ ("frame", Wire.Int v.v_frame);
      ("jain", Wire.Float v.v_jain);
      ("pending", Wire.Int v.v_pending);
      ("queue_watermark", Wire.Int v.v_queue_wm);
      ("pending_watermark", Wire.Int v.v_pending_wm);
      ("classes",
       Wire.Raw (Wire.arr (List.map (fun c -> Wire.Raw (class_json c)) v.v_classes)));
      ("tenants",
       Wire.Raw
         (Wire.arr (List.map (fun t -> Wire.Raw (tenant_json t)) v.v_tenants)));
      ("hidden_tenants", Wire.Int v.v_hidden) ]
  ^ "\n"

type mode = Table | Json_out | Prom

let render ~mode ~top ?prev snap =
  match mode with
  | Prom -> Snapshot.to_prometheus snap
  | Json_out -> render_json (view ?prev ~top snap)
  | Table -> render_table (view ?prev ~top snap)

let clear_screen () =
  if Unix.isatty Unix.stdout then print_string "\027[H\027[2J"

let show ~mode ~live s =
  if live && mode = Table then clear_screen ();
  print_string s;
  flush stdout

(* -------------------------------------------------------- file source *)

let run_stream ic ~mode ~once ~top =
  let last = ref None and prev = ref None and shown = ref false in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match metrics_of_line (Json.parse line) with
         | None -> ()
         | Some m ->
           let snap = snapshot_of_metrics m in
           if once then last := Some snap
           else begin
             show ~mode ~live:true (render ~mode ~top ?prev:!prev snap);
             shown := true
           end;
           prev := Some snap
         | exception Json.Error _ -> ()  (* foreign lines pass through *)
     done
   with End_of_file -> ());
  match (once, !last) with
  | true, Some snap -> show ~mode ~live:false (render ~mode ~top snap)
  | true, None -> failwith "no metrics lines in the stream"
  | false, _ -> if not !shown then failwith "no metrics lines in the stream"

(* ------------------------------------------------------ socket source *)

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     failwith (Printf.sprintf "cannot connect to %s: %s" path
                 (Unix.error_message e)));
  (Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let expect_ok ~what line =
  let j = try Json.parse line with Json.Error m ->
    failwith (Printf.sprintf "%s: bad reply: %s" what m)
  in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> j
  | Some (Json.Bool false) ->
    failwith
      (Printf.sprintf "%s: daemon error: %s" what
         (try Json.string_field "error" j with Json.Error _ -> line))
  | _ -> failwith (Printf.sprintf "%s: not a reply: %s" what line)

(* One-shot over the socket: a status round-trip carries the full
   metrics snapshot; nothing about the daemon changes. *)
let run_socket_once path ~mode ~top =
  let ic, oc = connect path in
  send oc {|{"do":"status"}|};
  let reply = expect_ok ~what:"status" (input_line ic) in
  (match metrics_of_line reply with
  | Some m ->
    show ~mode ~live:false (render ~mode ~top (snapshot_of_metrics m))
  | None -> failwith "status reply carries no metrics snapshot");
  close_out_noerr oc

(* Live: subscribe, then drive the daemon's logical clock. Each push
   arrives *before* the step reply that produced it, so reading until
   the reply drains exactly this step's pushes. *)
let run_socket_live path ~mode ~top ~every ~step ~frames ~interval_ms =
  let ic, oc = connect path in
  send oc (Printf.sprintf {|{"do":"subscribe","every":%d}|} every);
  ignore (expect_ok ~what:"subscribe" (input_line ic));
  let prev = ref None in
  let driven = ref 0 in
  (try
     while frames = 0 || !driven < frames do
       let n = if frames = 0 then step else min step (frames - !driven) in
       send oc (Printf.sprintf {|{"do":"step","frames":%d}|} n);
       let rec drain () =
         let line = input_line ic in
         let j = Json.parse line in
         if is_metrics j then begin
           let snap = snapshot_of_metrics j in
           show ~mode ~live:true (render ~mode ~top ?prev:!prev snap);
           prev := Some snap;
           drain ()
         end
         else ignore (expect_ok ~what:"step" line)
       in
       drain ();
       driven := !driven + n;
       if interval_ms > 0 then Unix.sleepf (float_of_int interval_ms /. 1000.)
     done;
     send oc {|{"do":"unsubscribe"}|};
     ignore (expect_ok ~what:"unsubscribe" (input_line ic))
   with End_of_file -> ());
  close_out_noerr oc

(* ---------------------------------------------------------------- CLI *)

let run source socket json prom once top every step frames interval_ms =
  if every < 1 then failwith "--every must be >= 1";
  if step < 0 then failwith "--step must be >= 1";
  if json && prom then failwith "--json and --prom are mutually exclusive";
  let mode = if prom then Prom else if json then Json_out else Table in
  let step = if step = 0 then every else step in
  match socket with
  | Some path ->
    if once then run_socket_once path ~mode ~top
    else run_socket_live path ~mode ~top ~every ~step ~frames ~interval_ms
  | None ->
    if source = "-" then run_stream stdin ~mode ~once ~top
    else begin
      let ic = open_in source in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> run_stream ic ~mode ~once ~top)
    end

open Cmdliner

let source =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"FILE"
        ~doc:
          "Captured JSONL stream to render ($(b,-) = stdin): subscribed \
           metrics lines, or any reply stream whose status replies embed a \
           metrics snapshot. Ignored with $(b,--socket).")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Connect to the dps_serve daemon listening on $(docv), subscribe, \
           and drive its logical clock ($(b,--step) frames per refresh).")

let json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit one canonical JSON line per refresh instead of the table \
           (same float and string encoding as the daemon's replies).")

let prom =
  Arg.(
    value & flag
    & info [ "prom" ]
        ~doc:
          "Emit the snapshot in Prometheus text exposition format instead \
           of the table.")

let once =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "Render a single snapshot and exit: the last metrics line of a \
           stream, or one status round-trip over $(b,--socket).")

let top =
  Arg.(
    value & opt int 0
    & info [ "top" ] ~docv:"K"
        ~doc:
          "Show only the $(docv) worst tenants (most shed + quota-rejected \
           traffic first). 0 shows all.")

let every =
  Arg.(
    value & opt int 16
    & info [ "every" ] ~docv:"N"
        ~doc:"Subscription cadence: one metrics push every $(docv) frames.")

let step =
  Arg.(
    value & opt int 0
    & info [ "step" ] ~docv:"N"
        ~doc:
          "Frames per step command when driving a daemon (default: \
           $(b,--every)).")

let frames =
  Arg.(
    value & opt int 0
    & info [ "frames" ] ~docv:"N"
        ~doc:
          "Stop after driving $(docv) frames over $(b,--socket) (0 = run \
           until interrupted).")

let interval_ms =
  Arg.(
    value & opt int 0
    & info [ "interval-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock pause between step commands — the refresh rate of \
           the live table.")

let run_safely source socket json prom once top every step frames interval_ms =
  try run source socket json prom once top every step frames interval_ms
  with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "dps_top: %s\n" msg;
    exit 1
  | Json.Error msg ->
    Printf.eprintf "dps_top: bad stream: %s\n" msg;
    exit 1

let cmd =
  let doc = "live monitor for the dps_serve daemon (top-like table, JSON, \
             or Prometheus exposition)" in
  let man =
    [ `S Manpage.s_examples;
      `P "Watch a running daemon, refreshing every 16 frames, twice a second:";
      `Pre "  dps_top --socket /tmp/dps.sock --interval-ms 500";
      `P "One deterministic JSON snapshot from a captured stream:";
      `Pre "  dps_top --once --json captured.jsonl";
      `P "Scrape-style export of the latest state:";
      `Pre "  dps_top --once --prom captured.jsonl";
      `S Manpage.s_see_also;
      `P
        "docs/CLI.md §dps_top; docs/OBSERVABILITY.md (metric catalogue, \
         stream schema); docs/SERVING.md (wire protocol)." ]
  in
  Cmd.v
    (Cmd.info "dps_top" ~doc ~man)
    Term.(
      const run_safely $ source $ socket $ json $ prom $ once $ top $ every
      $ step $ frames $ interval_ms)

let () = exit (Cmd.eval cmd)
